#!/usr/bin/env python
"""Elastic scaling demo (R2): reallocate live flows with the Figure 4
handover protocol.

Runs a two-instance flow-counting NF, then — while traffic is flowing —
moves every flow off instance 0 onto a freshly added scale-up instance.
Afterwards it verifies the two properties §5.1 promises:

* loss-freeness — every packet's update is in the store, including the
  packets that were in transit to the old instance at move time;
* the move itself took tens of microseconds, because only *operations*
  were flushed and ownership moved as one bulk metadata message (no state
  was serialized or copied, unlike OpenNF's multi-millisecond move).

Run:  python examples/elastic_scaling.py
"""

from repro import ChainRuntime, LogicalChain, Simulator, move_flows
from repro.core.nf_api import NetworkFunction, Output
from repro.store import AccessPattern, Scope, StateObjectSpec
from repro.traffic import FiveTuple, Packet


class FlowCounter(NetworkFunction):
    """Counts packets per flow (per-flow cached state)."""

    name = "flowcounter"

    def state_specs(self):
        return {
            "hits": StateObjectSpec(
                "hits", Scope.PER_FLOW, AccessPattern.READ_WRITE_OFTEN, initial_value=0
            )
        }

    def process(self, packet, state):
        yield from state.update("hits", packet.five_tuple.canonical().key(), "incr", 1)
        return [Output(packet)]


N_FLOWS = 8
PACKETS_PER_FLOW = 200


def main() -> None:
    sim = Simulator()
    chain = LogicalChain("scaling")
    chain.add_vertex("fc", FlowCounter, parallelism=2, entry=True)
    runtime = ChainRuntime(sim, chain)
    splitter = runtime.splitter("fc")

    def packet(flow: int) -> Packet:
        return Packet(FiveTuple(f"10.0.9.{flow}", "52.0.0.1", 5000 + flow, 80))

    results = {}

    def source():
        for round_ in range(PACKETS_PER_FLOW):
            for flow in range(N_FLOWS):
                runtime.inject(packet(flow))
                yield sim.timeout(1.5)
            if round_ == PACKETS_PER_FLOW // 3:
                # Scale up: new instance + reallocate fc-0's flows to it.
                scale_up = runtime.add_instance("fc", "2")
                moved_keys = [
                    splitter.key_of(packet(flow))
                    for flow in range(N_FLOWS)
                    if splitter.current_instance_for(splitter.key_of(packet(flow)))
                    == "fc-0"
                ]
                results["n_moved"] = len(moved_keys)

                def mover():
                    outcome = yield from move_flows(
                        runtime, "fc", moved_keys, scale_up.instance_id
                    )
                    results["move"] = outcome

                sim.process(mover())

    sim.process(source())
    sim.run(until=60_000_000)

    move = results["move"]
    print(f"moved {move.n_keys} flows to {move.new_instance} "
          f"in {move.duration_us:.1f}us ({move.n_markers} marker(s))")

    print(f"\n{'instance':<8} {'processed':>9}")
    for instance in runtime.instances_of("fc"):
        print(f"{instance.instance_id:<8} {instance.stats.processed:>9}")

    store = runtime.stores[0]
    print(f"\n{'flow':<12} {'store count':>11} {'owner':>8}")
    all_exact = True
    for flow in range(N_FLOWS):
        key = [k for k in store.keys() if f"10.0.9.{flow}|" in k][0]
        count = store.peek(key)
        all_exact &= count == PACKETS_PER_FLOW
        print(f"10.0.9.{flow:<5} {count:>11} {store.owner_of(key):>8}")
    print(f"\nloss-free: {'YES' if all_exact else 'NO'} "
          f"(every flow's count == {PACKETS_PER_FLOW})")


if __name__ == "__main__":
    main()
