#!/usr/bin/env python
"""Chain-wide ordering demo (R4): the Figure 2 trojan-detection chain.

Builds firewall -> scrubbers -> off-path trojan detector, injects trojan
signatures (SSH, then FTP, then IRC from the same host) plus decoy hosts
doing the same activities out of order, then slows one scrubber so the
detector sees a *reordered* copy of the traffic.

Run twice — once with the detector reasoning over CHC's logical clocks,
once over local arrival order — and compare detections. This is the §7.3
R4 experiment in miniature: clocks recover the true input order that the
slow upstream NF destroyed.

Run:  python examples/trojan_chain.py
"""

import random

from repro import ReplaySource, Simulator
from repro.bench.scenarios import build_trojan_chain
from repro.traffic import inject_trojan_signatures, make_trace2
from repro.traffic.packet import PORT_FTP, FiveTuple, Packet


def run(use_clocks: bool, seed: int = 3):
    sim = Simulator()
    runtime = build_trojan_chain(sim, use_clocks=use_clocks)

    base = make_trace2(scale=0.0015, seed=seed)
    scenario = inject_trojan_signatures(
        base, n_signatures=5, n_decoys=4, seed=seed, separation=25
    )

    # Resource contention at the FTP scrubber: 50-100us extra per packet.
    rng = random.Random(seed)
    splitter = runtime.splitter("scrubber")
    probe = Packet(FiveTuple("172.16.0.1", "52.99.0.1", 30000, PORT_FTP))
    slow_instance = splitter.route(probe)[0]
    runtime.instances[slow_instance].extra_delay = lambda: 50.0 + rng.random() * 50.0

    ReplaySource(sim, scenario.trace.packets, runtime.inject, load_fraction=0.5)
    sim.run(until=300_000_000)
    detector = runtime.instances_of("trojan")[0].nf
    return scenario, detector


def main() -> None:
    for use_clocks in (True, False):
        label = "CHC logical clocks" if use_clocks else "local arrival order"
        scenario, detector = run(use_clocks=use_clocks)
        infected = set(scenario.infected_hosts)
        detected = set(detector.detections)
        found = sorted(infected & detected)
        missed = sorted(infected - detected)
        false_positives = sorted(detected & set(scenario.decoy_hosts))
        print(f"\n=== detector using {label} ===")
        print(f"signatures injected : {len(infected)}")
        print(f"detected            : {len(found)}  {found}")
        print(f"missed              : {len(missed)}  {missed}")
        print(f"decoys flagged      : {len(false_positives)}  {false_positives}")


if __name__ == "__main__":
    main()
