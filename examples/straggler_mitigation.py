#!/usr/bin/env python
"""Straggler mitigation demo (R5, §5.3): clone, replay, retain.

A NAT instance becomes slow (resource contention adds 3-10us per packet).
The framework clones it: the clone starts from the straggler's latest
externalized state, the root replays in-flight packets to it, and live
traffic is replicated to both while the clone catches up. Every duplicate
this creates — duplicate outputs, duplicate state updates, duplicate
upstream processing — is suppressed by the queue filters and the store's
clock-keyed update log. Finally the faster instance is retained.

The demo verifies the R5 property: the downstream portscan detector sees
every packet exactly once and the chain's state equals a run with no
straggler at all.

Run:  python examples/straggler_mitigation.py
"""

import random

from repro import ChainRuntime, CloneController, LogicalChain, Simulator
from repro.nfs import Nat, PortscanDetector
from repro.store.keys import StateKey
from repro.traffic import FiveTuple, Packet

N_PACKETS = 600


def run(with_straggler: bool):
    sim = Simulator()
    chain = LogicalChain("straggler")
    chain.add_vertex("nat", Nat, entry=True)
    chain.add_vertex("scan", PortscanDetector)
    chain.add_edge("nat", "scan")
    runtime = ChainRuntime(sim, chain)

    session_box = {}
    controller = CloneController(runtime)

    if with_straggler:
        rng = random.Random(4)
        runtime.instances["nat-0"].extra_delay = lambda: 3.0 + rng.random() * 7.0

    def source():
        for index in range(N_PACKETS):
            runtime.inject(
                Packet(FiveTuple(f"10.0.6.{index % 9}", "52.0.0.1", 4000 + (index % 9), 80))
            )
            yield sim.timeout(2.5)
            if with_straggler and index == 120:
                def mitigate():
                    session_box["s"] = yield from controller.mitigate("nat-0")
                sim.process(mitigate())
            if with_straggler and index == 420:
                def resolve():
                    session = session_box["s"]
                    yield from controller.retain(session, controller.pick_faster(session))
                sim.process(resolve())

    sim.process(source())
    sim.run(until=120_000_000)

    def peek(vertex, obj):
        key = StateKey(vertex, obj).storage_key()
        return runtime.store.instance_for_key(key).peek(key)

    scan = runtime.instances_of("scan")[0]
    return {
        "nat total_packets": peek("nat", "total_packets"),
        "scan processed": scan.stats.processed,
        "scan duplicates": scan.stats.duplicates_seen,
        "dups suppressed by framework": runtime.duplicates_suppressed,
        "store updates emulated": sum(s.stats.ops_emulated for s in runtime.stores),
        "session": session_box.get("s"),
    }


def main() -> None:
    baseline = run(with_straggler=False)
    mitigated = run(with_straggler=True)
    session = mitigated.pop("session")
    baseline.pop("session")

    print(f"{'metric':<32} {'no straggler':>14} {'straggler+clone':>16}")
    for key in baseline:
        print(f"{key:<32} {baseline[key]!s:>14} {mitigated[key]!s:>16}")
    print(f"\nclone session: {session.straggler_id} cloned as {session.clone_id}, "
          f"{session.replayed} packets replayed, retained {session.resolved}")
    ok = (
        baseline["nat total_packets"] == mitigated["nat total_packets"] == N_PACKETS
        and mitigated["scan processed"] == N_PACKETS
        and mitigated["scan duplicates"] == 0
    )
    print(f"\nR5 (duplicate suppression) holds: {'YES' if ok else 'NO'}")


if __name__ == "__main__":
    main()
