"""Vertex managers and operator-supplied logic (§3)."""

import random


from repro.core.chain_runtime import ChainRuntime
from repro.core.cloning import CloneController
from repro.core.dag import LogicalChain
from repro.core.vertex_manager import (
    InstanceReport,
    VertexManager,
    default_scaling_logic,
    default_straggler_logic,
)
from tests.conftest import make_packet
from tests.test_cloning import SlowCounterNF


def report(instance_id, queue=0, processed=0, delta=0, latency=None):
    return InstanceReport(
        instance_id=instance_id,
        queue_depth=queue,
        processed=processed,
        processed_delta=delta,
        mean_latency_us=latency,
    )


class TestDefaultLogic:
    def test_straggler_detected_when_much_slower(self):
        logic = default_straggler_logic(threshold=0.5)
        reports = [report("a", delta=100), report("b", delta=30)]
        assert logic(reports) == "b"

    def test_no_straggler_when_balanced(self):
        logic = default_straggler_logic(threshold=0.5)
        reports = [report("a", delta=100), report("b", delta=80)]
        assert logic(reports) is None

    def test_single_instance_never_a_straggler(self):
        logic = default_straggler_logic()
        assert logic([report("a", delta=1)]) is None

    def test_idle_vertex_not_flagged(self):
        logic = default_straggler_logic()
        assert logic([report("a"), report("b")]) is None

    def test_scaling_triggers_on_backlog(self):
        logic = default_scaling_logic(queue_threshold=100)
        assert logic([report("a", queue=80), report("b", queue=50)]) is not None
        assert logic([report("a", queue=10)]) is None


class TestManagerLoop:
    def test_periodic_snapshots_and_deltas(self, sim):
        chain = LogicalChain("vm")
        chain.add_vertex("slow", SlowCounterNF, entry=True)
        runtime = ChainRuntime(sim, chain)
        manager = VertexManager(
            sim, "slow", instances_fn=lambda: runtime.instances_of("slow"),
            interval_us=50.0,
        )

        def source():
            for index in range(40):
                runtime.inject(make_packet(sport=1000 + index))
                yield sim.timeout(10.0)

        sim.process(source())
        sim.run(until=500.0)
        manager.stop()
        assert len(manager.history) >= 5
        total_delta = sum(r.processed_delta for snap in manager.history for r in snap)
        assert total_delta > 0

    def test_straggler_handler_invoked(self, sim):
        chain = LogicalChain("vm")
        chain.add_vertex("slow", SlowCounterNF, parallelism=2, entry=True)
        runtime = ChainRuntime(sim, chain)
        rng = random.Random(1)
        runtime.instances["slow-1"].extra_delay = lambda: 25.0 + rng.random() * 5
        detections = []
        manager = VertexManager(
            sim, "slow", instances_fn=lambda: runtime.instances_of("slow"),
            interval_us=300.0,
            straggler_logic=default_straggler_logic(threshold=0.5),
        )
        manager.on_straggler.append(detections.append)

        def source():
            for index in range(600):
                runtime.inject(make_packet(sport=1000 + (index % 16)))
                yield sim.timeout(2.0)

        sim.process(source())
        sim.run(until=60_000_000)
        manager.stop()
        assert "slow-1" in detections


class TestEndToEndAutomation:
    def test_manager_driven_straggler_mitigation(self, sim):
        """§3's full loop: the vertex manager's statistics feed the
        operator's straggler logic; a detection launches §5.3 mitigation."""
        chain = LogicalChain("auto")
        chain.add_vertex("slow", SlowCounterNF, parallelism=2, entry=True)
        runtime = ChainRuntime(sim, chain)
        rng = random.Random(2)
        runtime.instances["slow-0"].extra_delay = lambda: 25.0 + rng.random() * 5
        controller = CloneController(runtime)
        sessions = []

        def on_straggler(instance_id):
            if sessions:  # one mitigation at a time
                return

            def mitigate():
                session = yield from controller.mitigate(instance_id)
                sessions.append(session)

            sim.process(mitigate())

        manager = VertexManager(
            sim, "slow", instances_fn=lambda: runtime.instances_of("slow"),
            interval_us=300.0,
            straggler_logic=default_straggler_logic(threshold=0.5),
        )
        manager.on_straggler.append(on_straggler)

        n_packets = 800

        def source():
            for index in range(n_packets):
                runtime.inject(make_packet(sport=1000 + (index % 16)))
                yield sim.timeout(2.0)

        sim.process(source())
        sim.run(until=10_000_000)

        assert sessions, "manager never triggered mitigation"
        session = sessions[0]
        assert session.straggler_id == "slow-0"

        def resolve():
            yield from controller.retain(session, controller.pick_faster(session))

        sim.run_process(resolve())
        sim.run(until=60_000_000)
        manager.stop()
        # the clone (same CPU cost, no contention) wins...
        assert session.resolved == session.clone_id
        # ...and nothing was lost or duplicated along the way
        from repro.store.keys import StateKey

        key = StateKey("slow", "total").storage_key()
        assert runtime.store.instance_for_key(key).peek(key) == n_packets
