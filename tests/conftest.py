"""Shared fixtures: a simulator, a network, a store, and client factories."""

from __future__ import annotations

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.network import Link, Network
from repro.store.client import StoreClient
from repro.store.cluster import StoreCluster
from repro.store.datastore import DatastoreInstance
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from repro.traffic.packet import FiveTuple, Packet


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def network(sim):
    return Network(sim, Link(latency_us=14.0), seed=7)


@pytest.fixture
def store(sim, network):
    return DatastoreInstance(sim, network, "store0", n_threads=4)


@pytest.fixture
def cluster(store):
    return StoreCluster([store])


def default_specs():
    """A representative spec set covering all four Table 1 strategies."""
    return {
        "counter": StateObjectSpec(
            "counter", Scope.CROSS_FLOW, AccessPattern.WRITE_MOSTLY, (), initial_value=0
        ),
        "flow_state": StateObjectSpec(
            "flow_state", Scope.PER_FLOW, AccessPattern.READ_WRITE_OFTEN, initial_value=0
        ),
        "config": StateObjectSpec(
            "config", Scope.CROSS_FLOW, AccessPattern.READ_HEAVY, (), initial_value=None
        ),
        "shared": StateObjectSpec(
            "shared",
            Scope.CROSS_FLOW,
            AccessPattern.READ_WRITE_OFTEN,
            ("src_ip",),
            initial_value=0,
        ),
    }


@pytest.fixture
def client_factory(sim, network, cluster):
    def make(instance_id="nf-0", vertex="nf", **kwargs):
        return StoreClient(
            sim,
            network,
            cluster,
            vertex_id=vertex,
            instance_id=instance_id,
            specs=default_specs(),
            **kwargs,
        )

    return make


@pytest.fixture
def client(client_factory):
    return client_factory()


def make_packet(
    src="10.0.0.1", dst="52.0.0.1", sport=1234, dport=80, proto=6, clock=0, **kwargs
):
    packet = Packet(FiveTuple(src, dst, sport, dport, proto), **kwargs)
    packet.clock = clock
    return packet
