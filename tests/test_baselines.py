"""Unit/integration tests for the comparator systems."""

import pytest

from repro.baselines.ftmb import FtmbHarness
from repro.baselines.opennf import (
    OpenNfController,
    OpenNfSharedStateHarness,
    opennf_move,
)
from repro.baselines.statelessnf import LockingStateAPI, StatelessNfHarness
from repro.baselines.traditional import TraditionalChain, TraditionalNFHarness
from repro.nfs import Nat
from repro.traffic.trace import make_trace2
from repro.traffic.workload import ReplaySource
from tests.conftest import make_packet
from tests.test_cloning import SinkCounterNF, SlowCounterNF


class TestTraditional:
    def test_processes_and_records(self, sim):
        harness = TraditionalNFHarness(sim, Nat(), proc_time_us=2.0)
        trace = make_trace2(scale=0.0002)
        ReplaySource(sim, trace.packets, harness.inject, load_fraction=0.5)
        sim.run(until=60_000_000)
        assert harness.processed == len(trace)
        assert harness.recorder.median() == pytest.approx(2.0)

    def test_failure_loses_all_state(self, sim):
        harness = TraditionalNFHarness(sim, Nat())
        harness.inject(make_packet(flags=0x02))
        sim.run()
        assert harness.state.data
        harness.fail()
        assert harness.state.data == {}

    def test_chain_wires_stages(self, sim):
        chain = TraditionalChain(sim, [SlowCounterNF(), SinkCounterNF()])
        for sport in range(20):
            chain.inject(make_packet(sport=3000 + sport))
        sim.run()
        assert chain.egress_meter.packets == 20
        assert chain.stages[0].processed == 20
        assert chain.stages[1].processed == 20
        assert len(chain.egress_recorder) == 20

    def test_chain_end_to_end_latency_small(self, sim):
        chain = TraditionalChain(sim, [SlowCounterNF(), SinkCounterNF()])
        chain.inject(make_packet())
        sim.run()
        # 2 hops + 2 NICs + 2 x 2µs processing: low double digits
        assert chain.egress_recorder.values[0] < 20.0


class TestFtmb:
    def test_checkpoint_stall_inflates_tail(self, sim):
        harness = FtmbHarness(
            sim, Nat(), checkpoint_interval_us=1_000.0, checkpoint_stall_us=500.0
        )

        def source():
            for index in range(400):
                harness.inject(make_packet(sport=1000 + (index % 9)))
                yield sim.timeout(10.0)

        sim.process(source())
        sim.run(until=10_000)
        assert harness.checkpoints_taken >= 3
        p95 = harness.sojourn.percentile(95)
        median = harness.sojourn.median()
        assert p95 > 100.0  # packets caught behind the stall
        assert median < p95

    def test_recovery_replays_input_log(self, sim):
        harness = FtmbHarness(
            sim, SlowCounterNF(), checkpoint_interval_us=500.0, checkpoint_stall_us=0.0
        )

        def source():
            for index in range(78):  # ends just before t=1200
                harness.inject(make_packet(sport=1000 + index))
                yield sim.timeout(15.0)

        sim.process(source())
        sim.run(until=1_200)  # mid-interval: some inputs logged since the
        total_before = harness.state.data[("total", None)]  # last checkpoint

        def recover():
            duration = yield from harness.recover()
            return duration

        duration = sim.run_process(recover())
        assert duration > 0
        assert harness.state.data[("total", None)] == total_before


class TestOpenNf:
    def test_controller_serializes_updates(self, sim):
        controller = OpenNfController(sim, n_instances=2, serialize=True)
        release_times = []

        def submitter(index):
            def body():
                yield sim.timeout(index * 0.1)
                yield controller.mediate()
                release_times.append(sim.now)

            return body

        for index in range(4):
            sim.process(submitter(index)())
        sim.run()
        assert controller.mediated == 4
        gaps = [b - a for a, b in zip(release_times, release_times[1:])]
        # back-to-back releases are spaced by the controller's service time
        assert all(gap >= 100.0 for gap in gaps)

    def test_concurrent_controller_overlaps(self, sim):
        controller = OpenNfController(sim, n_instances=2)
        releases = []

        def submit():
            done = controller.mediate()
            done.add_callback(lambda e: releases.append(sim.now))
        for _ in range(5):
            submit()
        sim.run()
        # all five released at the same mediation latency (pipelined)
        assert len(set(round(t, 3) for t in releases)) == 1

    def test_shared_state_harness_pays_controller_latency(self, sim):
        controller = OpenNfController(sim, n_instances=2)
        harness = OpenNfSharedStateHarness(sim, Nat(), controller)
        harness.inject(make_packet())
        sim.run()
        assert harness.sojourn.values[0] > 100.0  # >> the 2µs CPU cost

    def test_move_cost_scales_with_flows(self, sim):
        def cost(n_flows):
            def body():
                result = yield from opennf_move(sim, n_flows)
                return result.duration_us

            return sim.run_process(body())

        small = cost(100)
        large = cost(4000)
        assert large > small
        assert large > 2_000.0  # milliseconds territory at 4000 flows


class TestStatelessNf:
    def test_update_costs_two_rtts(self, sim, network, store):
        api = LockingStateAPI(sim, network, "store0", "nat", "snf-0")

        def body():
            start = sim.now
            value = yield from api.update("counter", None, "incr", 1)
            return value, sim.now - start

        value, elapsed = sim.run_process(body())
        assert value == 1
        assert elapsed >= 56.0  # two RTTs over the 14µs links

    def test_two_writers_never_lose_updates(self, sim, network, store):
        apis = [
            LockingStateAPI(sim, network, "store0", "nat", f"snf-{k}")
            for k in range(2)
        ]

        def writer(api, n):
            def body():
                for _ in range(n):
                    yield from api.update("counter", None, "incr", 1)

            return body

        procs = [sim.process(writer(api, 25)()) for api in apis]
        sim.run()
        assert all(p.ok for p in procs)
        assert store.peek("nat\x1fcounter\x1f") == 50

    def test_harness_runs_nf_against_store(self, sim, network, store):
        harness = StatelessNfHarness(sim, Nat(), network, "store0", name="snf-h")
        for sport in range(5):
            harness.inject(make_packet(sport=4000 + sport, flags=0x02))
        sim.run()
        assert harness.processed == 5
        # state lives in the store, not the NF
        assert store.peek("nat\x1ftotal_packets\x1f") == 5
        assert harness.recorder.median() > 50.0
