"""Fabric smoke tests: real child processes, real sockets, real SIGKILL.

The heavy sweep lives in ``tools/dist_campaign.py`` (CI's dist-smoke job);
these tests pin the fabric's contract at the smallest useful scale — a
clean distributed run and one kill-and-respawn run — so a regression in
process spawning, bridging, recovery, or the cross-process checkers fails
fast inside the tier-1 suite.
"""

from __future__ import annotations

from repro.dist.fabric import DIST_SCENARIOS, run_dist_scenario


def test_scenario_table_is_complete():
    assert set(DIST_SCENARIOS) == {
        "no-fault",
        "shard-kill",
        "store-kill",
        "partition",
        "stall",
    }
    for spec in DIST_SCENARIOS.values():
        if spec.fault != "none":
            assert spec.requires_distinct_pids or spec.requires_socket_faults


def test_no_fault_run_is_clean_and_really_distributed():
    outcome = run_dist_scenario(
        "no-fault", 3, n_shards=2, n_packets=24, n_flows=3
    )
    assert outcome.infra_error is None
    assert outcome.violations == [], outcome.violations
    pids = outcome.evidence["pids"]
    # three real OS processes, all distinct
    assert set(pids) == {"store0", "s0", "s1"}
    all_pids = [pid for history in pids.values() for pid in history]
    assert len(all_pids) == len(set(all_pids)) == 3
    # traffic actually crossed the sockets
    totals = outcome.evidence["store_counters"]["peer_totals"]
    assert totals["frames_received"] > 0 and totals["frames_sent"] > 0
    for shard in ("s0", "s1"):
        assert outcome.per_shard[shard]["egressed"] == 24


def test_shard_kill_respawns_a_real_process():
    outcome = run_dist_scenario(
        "shard-kill", 3, n_shards=2, n_packets=24, n_flows=3
    )
    assert outcome.infra_error is None
    assert outcome.violations == [], outcome.violations
    # the SIGKILL evidence: two distinct incarnation pids for s0
    history = outcome.evidence["pids"]["s0"]
    assert len(history) == 2 and history[0] != history[1]
    # the respawned incarnation finished the workload exactly-once
    assert outcome.per_shard["s0"]["egressed"] == 24
