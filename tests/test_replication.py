"""Store replication (§5.4 "Correlated failures" mitigation).

The paper leaves this as the stated mitigation: replicated store
instances survive the correlated component+store failure that plain CHC
cannot, at the cost of per-packet latency (synchronous mode).
"""

import pytest

from repro.simnet.rpc import RpcEndpoint
from repro.store.cluster import StoreCluster
from repro.store.datastore import DatastoreInstance
from repro.store.protocol import OpRequest, OwnerRequest, ReadRequest
from repro.store.store_recovery import promote_replica


@pytest.fixture
def mirrored(sim, network):
    mirror = DatastoreInstance(sim, network, "mirror0")
    primary = DatastoreInstance(
        sim, network, "primary0", mirror="mirror0", sync_replication=False
    )
    return primary, mirror


def call(sim, caller, payload, dst):
    def body():
        value = yield caller.call_event(dst, payload)
        return value

    return sim.run_process(body())


class TestReplication:
    def test_updates_reach_the_mirror(self, sim, network, mirrored):
        primary, mirror = mirrored
        caller = RpcEndpoint(sim, network, "nf-0")
        call(sim, caller, OpRequest(key="k", op="incr", args=(3,), instance="nf-0"), "primary0")
        sim.run()
        assert primary.peek("k") == 3
        assert mirror.peek("k") == 3

    def test_mirror_keeps_dedup_identity(self, sim, network, mirrored):
        primary, mirror = mirrored
        caller = RpcEndpoint(sim, network, "nf-0")
        call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="a", clock=9), "primary0")
        sim.run()
        # after promotion, a retransmitted duplicate is emulated, not applied
        result = call(
            sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="b", clock=9), "mirror0"
        )
        assert result.emulated
        assert mirror.peek("k") == 1

    def test_ownership_metadata_replicates(self, sim, network, mirrored):
        primary, mirror = mirrored
        caller = RpcEndpoint(sim, network, "nf-0")
        call(sim, caller, OwnerRequest(key="pf", instance="nf-0", action="associate"), "primary0")
        sim.run()
        assert mirror.owner_of("pf") == "nf-0"

    def test_sync_replication_adds_latency(self, sim, network):
        DatastoreInstance(sim, network, "m-async")
        DatastoreInstance(sim, network, "m-sync")
        fast = DatastoreInstance(sim, network, "p-async", mirror="m-async")
        slow = DatastoreInstance(
            sim, network, "p-sync", mirror="m-sync", sync_replication=True
        )
        caller = RpcEndpoint(sim, network, "nf-0")

        def timed(dst):
            def body():
                start = sim.now
                yield caller.call_event(dst, OpRequest(key="k", op="incr", args=(1,), instance="x"))
                return sim.now - start

            return sim.run_process(body())

        async_latency = timed("p-async")
        sync_latency = timed("p-sync")
        # the paper's stated cost: synchronous replication adds a store RTT
        assert sync_latency >= async_latency + 28.0

    def test_promotion_survives_correlated_failure(self, sim, network, mirrored):
        primary, mirror = mirrored
        cluster = StoreCluster([primary])
        caller = RpcEndpoint(sim, network, "nf-0")
        for clock in range(1, 11):
            call(
                sim, caller,
                OpRequest(key="k", op="incr", args=(1,), instance="nf-0", clock=clock),
                "primary0",
            )
        sim.run()
        primary.fail()  # together with, say, the NF whose state it held
        promote_replica(cluster, primary, mirror)
        assert cluster.endpoint_for_key("k") == "mirror0"
        read = call(sim, caller, ReadRequest(key="k"), "mirror0")
        assert read.value == 10
