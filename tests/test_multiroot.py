"""Multi-root deployments (§4.1, §5): R roots, clock root-ID encoding."""


from repro.core.chain_runtime import ChainRuntime
from repro.core.clock import clock_root
from repro.core.dag import LogicalChain
from repro.core.recovery import fail_over_nf, fail_over_root
from repro.store.keys import StateKey
from tests.conftest import make_packet
from tests.test_cloning import SinkCounterNF, SlowCounterNF


def build(sim, n_roots=2):
    chain = LogicalChain("multiroot")
    chain.add_vertex("slow", SlowCounterNF, entry=True)
    chain.add_vertex("sink", SinkCounterNF)
    chain.add_edge("slow", "sink")
    return ChainRuntime(sim, chain, n_roots=n_roots)


def peek(runtime, vertex, obj):
    key = StateKey(vertex, obj).storage_key()
    return runtime.store.instance_for_key(key).peek(key)


def inject_flows(sim, runtime, n_flows=16, per_flow=10, crash=None):
    def source():
        for round_ in range(per_flow):
            for flow in range(n_flows):
                runtime.inject(make_packet(src=f"10.0.4.{flow}", sport=3000 + flow))
                yield sim.timeout(2.0)
            if crash is not None:
                crash(round_)

    sim.process(source())
    sim.run(until=60_000_000)


class TestMultiRoot:
    def test_traffic_partitioned_across_roots(self, sim):
        runtime = build(sim, n_roots=2)
        inject_flows(sim, runtime)
        injected = [root.stats.injected for root in runtime.roots]
        assert sum(injected) == 160
        assert all(count > 0 for count in injected)

    def test_clocks_carry_root_id(self, sim):
        runtime = build(sim, n_roots=3)
        seen_roots = set()
        original = runtime._forward_from_root

        def spy(packet):
            seen_roots.add(clock_root(packet.clock))
            original(packet)

        for root in runtime.roots:
            root.forward = spy
        inject_flows(sim, runtime)
        assert len(seen_roots) >= 2

    def test_deletes_reach_the_right_root(self, sim):
        runtime = build(sim, n_roots=2)
        inject_flows(sim, runtime)
        # every packet deleted at its own root; none stuck
        for root in runtime.roots:
            assert root.stats.deleted == root.stats.injected
            assert len(root.log) == 0

    def test_commit_signals_routed_by_clock(self, sim):
        runtime = build(sim, n_roots=2)
        inject_flows(sim, runtime)
        for root in runtime.roots:
            if root.stats.injected:
                assert root.stats.commit_signals > 0

    def test_state_correct_under_multi_root(self, sim):
        runtime = build(sim, n_roots=2)
        inject_flows(sim, runtime)
        assert peek(runtime, "slow", "total") == 160
        assert peek(runtime, "sink", "seen") == 160

    def test_failover_replays_from_all_roots(self, sim):
        runtime = build(sim, n_roots=2)
        results = {}

        def crash(round_):
            if round_ == 8:
                runtime.instances["slow-0"].fail()

                def recover():
                    results["r"] = yield from fail_over_nf(runtime, "slow-0")

                sim.process(recover())

        inject_flows(sim, runtime, crash=crash)
        assert results["r"].replayed > 0
        assert peek(runtime, "slow", "total") == 160
        assert peek(runtime, "sink", "seen") == 160

    def test_single_root_failover_leaves_other_running(self, sim):
        runtime = build(sim, n_roots=2)
        failed = runtime.roots[1]

        def crash(round_):
            if round_ == 5:
                failed.fail()

                def recover():
                    yield from fail_over_root(runtime, failed)

                sim.process(recover())

        inject_flows(sim, runtime, crash=crash)
        # the surviving root kept all of its packets flowing
        assert runtime.roots[0].stats.deleted == runtime.roots[0].stats.injected
        # the recovered root resumed (same root_id, fresh clock range)
        assert runtime.roots[1].alive
        assert runtime.roots[1].root_id == 1
