"""chclint rule coverage: one bad fixture per rule, plus the clean floor.

Fixtures live in ``tests/fixtures/chclint/``; each ``bad_chcNNN.py`` is a
minimal violation of exactly that rule, ``good.py`` shows the sanctioned
idioms, and ``suppressed.py`` carries inline ``chclint: disable``
comments. The final test is the self-check the CI lint job enforces:
``src/repro`` itself must be chclint-clean.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import lint

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "chclint"
REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def fixture_findings(name):
    return lint.check_file(FIXTURES / name)


class TestRules:
    def test_chc001_module_level_randomness(self):
        findings = fixture_findings("bad_chc001.py")
        assert findings, "bad_chc001.py must produce findings"
        assert {f.code for f in findings} == {"CHC001"}
        lines = {f.line for f in findings}
        assert 5 in lines  # random.random() at module level
        assert 9 in lines  # random.choice() inside a function

    def test_chc001_numpy_random_flagged_but_default_rng_allowed(self):
        bad = lint.check_source(
            "import numpy as np\nx = np.random.rand(3)\n", Path("mod.py")
        )
        assert any(f.code == "CHC001" for f in bad)
        good = lint.check_source(
            "import numpy as np\nrng = np.random.default_rng(7)\n", Path("mod.py")
        )
        assert good == []

    def test_chc002_wall_clock(self):
        findings = fixture_findings("bad_chc002.py")
        assert [f.code for f in findings] == ["CHC002"]
        assert findings[0].line == 7
        assert "time.time()" in findings[0].message

    def test_chc002_exempt_under_tools(self, tmp_path):
        tools_dir = tmp_path / "tools"
        tools_dir.mkdir()
        bench = tools_dir / "bench.py"
        bench.write_text("import time\n\nstart = time.time()\n")
        assert lint.check_file(bench) == []

    def test_chc003_set_iteration_feeding_emission(self):
        findings = fixture_findings("bad_chc003.py")
        assert [f.code for f in findings] == ["CHC003"]
        assert findings[0].line == 5  # the `for` statement
        assert "sorted" in findings[0].message

    def test_chc003_dict_values_iteration(self):
        source = (
            "def flush(queues, item):\n"
            "    for q in queues.values():\n"
            "        q.send(item)\n"
        )
        findings = lint.check_source(source, Path("mod.py"))
        assert [f.code for f in findings] == ["CHC003"]

    def test_chc003_sorted_iteration_is_clean(self):
        source = (
            "def flush(queues, item):\n"
            "    for q in sorted(queues.values()):\n"
            "        q.send(item)\n"
        )
        assert lint.check_source(source, Path("mod.py")) == []

    def test_chc004_id_as_persisted_key(self):
        findings = fixture_findings("bad_chc004.py")
        codes = [f.code for f in findings]
        assert codes and set(codes) == {"CHC004"}
        # subscript write, .get() lookup, and membership test all flagged
        assert len(findings) >= 3

    def test_chc005_nf_state_outside_store_api(self):
        findings = fixture_findings(Path("nfs") / "bad_chc005.py")
        codes = [f.code for f in findings]
        assert codes and set(codes) == {"CHC005"}
        messages = " ".join(f.message for f in findings)
        assert "self.count" in messages  # attribute write outside __init__
        assert "global" in messages  # module-global mutation

    def test_chc005_inactive_outside_nfs_dirs(self):
        source = (
            "class C:\n"
            "    def tick(self):\n"
            "        self.count = 1\n"
        )
        assert lint.check_source(source, Path("core/mod.py")) == []

    def test_chc006_declarative_contract(self):
        findings = fixture_findings(Path("nfs") / "bad_chc006.py")
        codes = [f.code for f in findings]
        assert codes and set(codes) == {"CHC006"}
        messages = " ".join(f.message for f in findings)
        assert "'undeclared'" in messages  # table missing from the form
        assert "non-literal" in messages  # dynamic table name
        assert "pure header predicate" in messages  # stateful fast_match
        assert len(findings) == 3

    def test_chc006_declared_tables_pass(self):
        source = (
            "class GoodNF:\n"
            "    def fast_action(self, packet, state):\n"
            "        state.update('conn', None, 'set', 1)\n"
            "        return []\n"
            "    def match_action_form(self):\n"
            "        return MatchActionForm(\n"
            "            tables=('conn',), match=None, action=self.fast_action)\n"
        )
        assert lint.check_source(source, Path("nfs/good_nf.py")) == []

    def test_chc006_inactive_outside_nfs_dirs(self):
        source = (
            "class C:\n"
            "    def fast_action(self, packet, state):\n"
            "        state.update('anything', None, 'set', 1)\n"
            "    def match_action_form(self):\n"
            "        return MatchActionForm(tables=(), match=None, action=None)\n"
        )
        assert lint.check_source(source, Path("core/mod.py")) == []

    def test_chc006_no_form_means_no_contract(self):
        # an imperative-only NF (no match_action_form) is out of scope
        source = (
            "class PlainNF:\n"
            "    def fast_action(self, packet, state):\n"
            "        state.update('whatever', None, 'set', 1)\n"
        )
        assert lint.check_source(source, Path("nfs/plain.py")) == []

    def test_chc007_membership_and_retirement(self):
        findings = fixture_findings("bad_chc007.py")
        codes = [f.code for f in findings]
        assert codes and set(codes) == {"CHC007"}
        # in-place mutator, item assignment, rebind, del, retire_instance
        assert len(findings) == 5
        assert {f.line for f in findings} == {5, 6, 7, 8, 9}
        messages = " ".join(f.message for f in findings)
        assert "replace_instance" in messages
        assert "retire_instance" in messages

    def test_chc007_exempt_in_control_plane_modules(self):
        source = "def cutover(s, new):\n    s.hash_members.append(new)\n"
        # the splitter's own file and the maintenance-director package are
        # the sanctioned mutators; anywhere else the same code is flagged
        assert lint.check_source(source, Path("core/splitter.py")) == []
        assert lint.check_source(source, Path("ops/director.py")) == []
        flagged = lint.check_source(source, Path("core/mod.py"))
        assert [f.code for f in flagged] == ["CHC007"]

    def test_chc007_reads_are_not_flagged(self):
        source = (
            "def audit(s):\n"
            "    members = list(s.hash_members)\n"
            "    return s.hash_members[0], len(members)\n"
        )
        assert lint.check_source(source, Path("core/mod.py")) == []

    def test_chc008_raw_transport_imports(self):
        findings = fixture_findings("bad_chc008.py")
        codes = [f.code for f in findings]
        assert codes and set(codes) == {"CHC008"}
        # import pickle / import socket / from pickle / from socket
        assert len(findings) == 4
        assert {f.line for f in findings} == {3, 4, 5, 6}
        messages = " ".join(f.message for f in findings)
        assert "repro.dist.transport" in messages

    def test_chc008_exempt_in_dist_transport(self):
        source = "import socket\nimport pickle\n"
        # the framing layer is the one sanctioned home for raw sockets;
        # the same imports anywhere else are flagged
        assert lint.check_source(source, Path("dist/transport.py")) == []
        flagged = lint.check_source(source, Path("dist/shard.py"))
        assert [f.code for f in flagged] == ["CHC008", "CHC008"]
        flagged = lint.check_source(source, Path("store/transport.py"))
        assert [f.code for f in flagged] == ["CHC008", "CHC008"]

    def test_chc008_submodule_and_alias_forms(self):
        assert [
            f.code
            for f in lint.check_source("import socket as s\n", Path("mod.py"))
        ] == ["CHC008"]
        assert [
            f.code
            for f in lint.check_source(
                "from socket import socket\n", Path("mod.py")
            )
        ] == ["CHC008"]
        # socketserver is a different module, not a raw-socket import
        assert lint.check_source("import socketserver\n", Path("mod.py")) == []


class TestMechanics:
    def test_good_fixture_is_clean(self):
        assert fixture_findings("good.py") == []

    def test_inline_suppressions(self):
        assert fixture_findings("suppressed.py") == []

    def test_select_filters_rules(self):
        findings = lint.run_paths([FIXTURES], select={"CHC002"})
        assert findings and all(f.code == "CHC002" for f in findings)

    def test_findings_carry_file_and_line(self):
        findings = lint.run_paths([FIXTURES / "bad_chc001.py"])
        rendered = findings[0].format()
        assert "bad_chc001.py:5:" in rendered
        assert "CHC001" in rendered

    def test_syntax_error_reports_chc000_and_exit_2(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        assert lint.main([str(broken)]) == 2
        assert "CHC000" in capsys.readouterr().out

    def test_cli_exit_codes(self, capsys):
        assert lint.main([str(FIXTURES / "good.py")]) == 0
        assert lint.main([str(FIXTURES / "bad_chc002.py")]) == 1
        out = capsys.readouterr().out
        assert "CHC002" in out

    def test_cli_json_report(self, capsys):
        assert lint.main([str(FIXTURES / "bad_chc003.py"), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["tool"] == "chclint"
        assert report["count"] == 1
        assert report["findings"][0]["code"] == "CHC003"
        assert report["findings"][0]["line"] == 5

    def test_unknown_select_code_rejected(self):
        with pytest.raises(SystemExit):
            lint.main([str(FIXTURES / "good.py"), "--select", "CHC999"])


def test_repo_source_is_chclint_clean():
    """The CI lint gate: the repo's own source has zero findings."""
    findings = lint.run_paths([REPO_SRC])
    assert findings == [], "\n".join(f.format() for f in findings)
