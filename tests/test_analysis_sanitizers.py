"""Runtime-sanitizer coverage (DESIGN.md §9.2).

The two scripted scenarios the issue demands — an ownership race with no
handover in between, and a backpressure wait cycle — must each fail
*loudly and named*, not by timeout: the race names both writers and the
key, the deadlock names every node on the cycle. Alongside those:
transfer/clone/reject paths that must NOT raise, clock monotonicity, the
suite's multi-run accounting, and the MoveMarker identity regression
(CHC004 at the Figure-4 barrier).
"""

from types import SimpleNamespace

import pytest

from repro.analysis import runtime as sanitize_runtime
from repro.analysis.runtime import sanitized
from repro.analysis.sanitizers import (
    KEY_SEP,
    ClockMonotonicityError,
    ClockSanitizer,
    DeadlockError,
    OwnershipRaceError,
    OwnershipSanitizer,
    SanitizerSuite,
    WaitGraph,
)
from repro.core.instance import NFInstance
from repro.core.splitter import MoveMarker
from repro.simnet.engine import Channel, Simulator
from repro.simnet.rpc import RpcEndpoint, RpcGaveUp
from repro.store.protocol import BulkOwnerMove, WriteRequest

FLOW_KEY = KEY_SEP.join(("nf", "conn", "flow-1"))
SHARED_KEY = KEY_SEP.join(("nf", "table", ""))


class TestOwnershipSanitizer:
    def test_two_writers_without_handover_raise_named(self):
        san = OwnershipSanitizer()
        san.note_apply(FLOW_KEY, "nf-a-0")
        with pytest.raises(OwnershipRaceError) as excinfo:
            san.note_apply(FLOW_KEY, "nf-b-0")
        message = str(excinfo.value)
        assert "nf-a-0" in message and "nf-b-0" in message
        assert "flow-1" in message

    def test_transfer_legitimizes_the_new_writer(self):
        san = OwnershipSanitizer()
        san.note_apply(FLOW_KEY, "nf-a-0")
        san.note_transfer(FLOW_KEY, "nf-b-0", "bulk_move")
        san.note_apply(FLOW_KEY, "nf-b-0")  # must not raise
        assert san.transfers_seen == 1

    def test_shared_keys_allow_multi_writer(self):
        san = OwnershipSanitizer()
        san.note_apply(SHARED_KEY, "nf-a-0")
        san.note_apply(SHARED_KEY, "nf-b-0")  # store-serialized; legal
        assert san.writes_checked == 0

    def test_rejected_writes_are_counted_not_raised(self):
        san = OwnershipSanitizer()
        san.note_apply(FLOW_KEY, "nf-a-0")
        san.note_reject(FLOW_KEY, "nf-b-0", "nf-a-0")
        assert san.rejects_seen == 1

    def test_registered_clone_co_writes_legally(self):
        san = OwnershipSanitizer()
        san.note_clone("nf-a-0", "nf-a-0c", register=True)
        san.note_apply(FLOW_KEY, "nf-a-0")
        san.note_apply(FLOW_KEY, "nf-a-0c")  # straggler clone co-writing
        san.note_clone("nf-a-0", "nf-a-0c", register=False)
        with pytest.raises(OwnershipRaceError):
            san.note_apply(FLOW_KEY, "nf-a-0")
            san.note_apply(FLOW_KEY, "nf-a-0c")

    def test_cache_co_write_without_handover_raises_named(self):
        san = OwnershipSanitizer()
        san.note_cache_write(FLOW_KEY, "nf-a-0")
        with pytest.raises(OwnershipRaceError) as excinfo:
            san.note_cache_write(FLOW_KEY, "nf-b-0")
        message = str(excinfo.value)
        assert "cache co-write" in message
        assert "nf-a-0" in message and "nf-b-0" in message
        assert "flow-1" in message

    def test_cache_fill_after_transfer_is_legal(self):
        san = OwnershipSanitizer()
        san.note_cache_write(FLOW_KEY, "nf-a-0")
        san.note_transfer(FLOW_KEY, "nf-b-0", "bulk_move")
        san.note_cache_write(FLOW_KEY, "nf-b-0")  # must not raise
        assert san.cache_writes_checked == 2

    def test_clone_cache_fill_is_legal_and_shared_keys_unchecked(self):
        san = OwnershipSanitizer()
        san.note_clone("nf-a-0", "nf-a-0c", register=True)
        san.note_cache_write(FLOW_KEY, "nf-a-0")
        san.note_cache_write(FLOW_KEY, "nf-a-0c")  # clone warms its copy
        san.note_cache_write(SHARED_KEY, "nf-b-0")  # store-serialized
        assert san.cache_writes_checked == 2


class TestOwnershipThroughStore:
    """The scripted race of the issue: two instances write one per-flow
    key through the real datastore write path, no handover in between."""

    def test_race_raises_through_store_write(self, sim, store):
        with sanitized():
            assert store._write(WriteRequest(key=FLOW_KEY, value=1, instance="nf-a-0"))
            with pytest.raises(OwnershipRaceError) as excinfo:
                store._write(WriteRequest(key=FLOW_KEY, value=2, instance="nf-b-0"))
        message = str(excinfo.value)
        assert "nf-a-0" in message and "nf-b-0" in message

    def test_bulk_move_between_writes_is_legal(self, sim, store):
        with sanitized() as suite:
            assert store._write(WriteRequest(key=FLOW_KEY, value=1, instance="nf-a-0"))
            moved = store._handle_bulk_move(
                BulkOwnerMove(
                    keys=(FLOW_KEY,), old_instance="nf-a-0", new_instance="nf-b-0"
                )
            )
            assert moved == 1
            assert store._write(WriteRequest(key=FLOW_KEY, value=2, instance="nf-b-0"))
            report = suite.report()
        assert report["writes_checked"] == 2
        assert report["transfers_seen"] == 1

    def test_wrong_owner_write_is_rejected_not_raised(self, sim, store):
        with sanitized() as suite:
            store._owners[FLOW_KEY] = "nf-a-0"
            assert store._write(WriteRequest(key=FLOW_KEY, value=1, instance="nf-a-0"))
            assert not store._write(
                WriteRequest(key=FLOW_KEY, value=2, instance="nf-b-0")
            )
            report = suite.report()
        assert report["rejects_seen"] == 1


class TestClockSanitizer:
    def test_monotone_clocks_pass(self):
        san = ClockSanitizer()
        for clock in (1, 2, 10):
            san.note_issue(7, clock, "root-a")
        assert san.clocks_checked == 3

    def test_reissued_clock_raises_named(self):
        san = ClockSanitizer()
        san.note_issue(7, 10, "root-a")
        with pytest.raises(ClockMonotonicityError) as excinfo:
            san.note_issue(7, 10, "root-a-recovered")
        message = str(excinfo.value)
        assert "root-a-recovered" in message and "root-a" in message
        assert "10" in message

    def test_roots_are_independent(self):
        san = ClockSanitizer()
        san.note_issue(1, 10, "root-a")
        san.note_issue(2, 10, "root-b")  # different root: no conflict


class TestWaitGraph:
    def test_cycle_raises_with_every_node_named(self):
        graph = WaitGraph()
        graph.add("rx:a", "wkr:a")
        graph.add("wkr:a", "nic:b")
        with pytest.raises(DeadlockError) as excinfo:
            graph.add("nic:b", "rx:a")
        message = str(excinfo.value)
        assert "backpressure deadlock" in message
        for node in ("rx:a", "wkr:a", "nic:b"):
            assert node in message
        assert message.count("nic:b") == 2  # the cycle closes on itself

    def test_counted_edges_survive_partial_release(self):
        graph = WaitGraph()
        graph.add("a", "b")
        graph.add("a", "b")
        graph.remove("a", "b")
        with pytest.raises(DeadlockError):
            graph.add("b", "a")  # a→b still outstanding

    def test_released_edges_close_no_cycle(self):
        graph = WaitGraph()
        graph.add("a", "b")
        graph.remove("a", "b")
        graph.add("b", "a")  # must not raise
        graph.remove("missing", "edge")  # tolerant of resets mid-wait

    def test_soft_edges_never_close_a_cycle(self):
        # a timed wait is broken by its own timeout, so mutual timed
        # waits (RPC retransmission timers) are not a deadlock
        graph = WaitGraph()
        graph.add("rpc:a", "rpc:b", soft=True)
        graph.add("rpc:b", "rpc:a", soft=True)  # must not raise
        assert graph.soft_edges_added == 2
        assert graph.edges_added == 0

    def test_cycle_through_soft_edge_is_not_a_deadlock(self):
        graph = WaitGraph()
        graph.add("a", "b", soft=True)
        graph.add("b", "c")
        graph.add("c", "a")  # closes the loop only via the timed edge
        graph.remove("a", "b", soft=True)
        with pytest.raises(DeadlockError):
            graph.add("a", "b")  # the same edge, untimed: a real cycle


def _parked_emitter(sim, suite, src, dst, channel, item):
    """The exact park idiom the instance/NIC hooks use."""
    while not channel.put(item):
        suite.wait_edge(sim, src, dst)
        try:
            yield channel.space_event()
        finally:
            suite.release_edge(src, dst)


class TestDeadlockIntegration:
    def test_cross_channel_wait_cycle_fails_loudly(self, sim):
        """Two workers, each blocked emitting into the other's full queue.

        Without the sanitizer this wedges silently until a timeout; with
        it, the second park closes the cycle and raises inside the
        parking process, naming both workers.
        """
        suite = SanitizerSuite()
        queue_a = Channel(sim, name="a-in", capacity=1)
        queue_b = Channel(sim, name="b-in", capacity=1)
        assert queue_a.put("seed") and queue_b.put("seed")  # both full
        sim.process(_parked_emitter(sim, suite, "wkr:a", "wkr:b", queue_b, "x"))
        with pytest.raises(DeadlockError) as excinfo:
            sim.run_process(
                _parked_emitter(sim, suite, "wkr:b", "wkr:a", queue_a, "y")
            )
        message = str(excinfo.value)
        assert "wkr:a" in message and "wkr:b" in message

    def test_drained_wait_is_not_a_deadlock(self, sim):
        suite = SanitizerSuite()
        queue = Channel(sim, name="q", capacity=1)
        assert queue.put("seed")

        def consumer():
            yield sim.timeout(5.0)
            item = yield queue.get()
            assert item == "seed"

        sim.process(consumer())
        sim.run_process(_parked_emitter(sim, suite, "wkr:p", "wkr:c", queue, "x"))
        assert suite.waits.edges_added == 1
        assert suite.waits._edges == {}  # released on wake


def _swallow_gaveup(endpoint, dst, **kwargs):
    try:
        yield from endpoint.call(dst, "ping", **kwargs)
    except RpcGaveUp:
        pass


class TestRpcWaitEdges:
    """Timed RPC waits are soft wait-graph edges (they cannot wedge);
    only an untimed wait is a hard edge that can close a real cycle."""

    def test_mutual_timed_calls_are_soft_not_deadlock(self, sim, network):
        a = RpcEndpoint(sim, network, "a")
        b = RpcEndpoint(sim, network, "b")
        with sanitized() as suite:
            # neither endpoint serves requests: both calls park on each
            # other with retransmission timers, then give up — a cycle in
            # shape, broken by its own timeouts
            sim.process(_swallow_gaveup(a, "b", timeout_us=10.0, max_retries=1))
            sim.process(_swallow_gaveup(b, "a", timeout_us=10.0, max_retries=1))
            sim.run(until=1_000.0)
            report = suite.report()
        assert report["wait_soft_edges_added"] >= 2
        assert report["wait_edges_added"] == 0

    def test_mutual_untimed_calls_close_a_hard_cycle(self, sim, network):
        a = RpcEndpoint(sim, network, "a")
        b = RpcEndpoint(sim, network, "b")
        with sanitized():
            sim.process(_swallow_gaveup(a, "b"))
            with pytest.raises(DeadlockError) as excinfo:
                sim.run_process(_swallow_gaveup(b, "a"))
        message = str(excinfo.value)
        assert "rpc:a" in message and "rpc:b" in message


class TestSuiteLifecycle:
    def test_sanitized_installs_and_uninstalls(self):
        assert sanitize_runtime.ACTIVE is None
        with sanitized() as suite:
            assert sanitize_runtime.ACTIVE is suite
        assert sanitize_runtime.ACTIVE is None

    def test_counters_accumulate_across_runs(self):
        suite = SanitizerSuite()
        sim_a, sim_b = Simulator(), Simulator()
        suite.note_store_apply(sim_a, FLOW_KEY, "nf-a-0")
        suite.note_store_apply(sim_b, FLOW_KEY, "nf-b-0")  # new sim: reset, no race
        report = suite.report()
        assert report["writes_checked"] == 2
        assert report["runs_observed"] == 2

    def test_campaign_run_is_sanitizer_clean(self):
        from repro.chaos.campaign import SCENARIOS, run_scenario

        with sanitized() as suite:
            outcome = run_scenario(SCENARIOS["nf-crash"], seed=0)
            report = suite.report()
        assert outcome.ok, outcome.violations
        assert report["writes_checked"] > 0
        assert report["clocks_checked"] > 0


class TestMarkerIdentity:
    """Regression for the id(marker) barrier bug (chclint CHC004)."""

    def test_equal_markers_have_distinct_identities(self):
        make = lambda: MoveMarker(  # noqa: E731
            scope_keys=frozenset({("10.0.0.1",)}),
            fields=("src_ip",),
            old_instance="nf-a-0",
            new_instance="nf-a-1",
            move_id=1,
        )
        first, second = make(), make()
        assert first == second  # value-identical: equality ignores identity
        assert first.marker_id != second.marker_id
        assert second.marker_id > first.marker_id  # process-monotonic

    def test_barrier_counts_key_on_marker_id_not_id(self):
        """Two value-equal markers must keep separate worker barriers."""
        make = lambda: MoveMarker(  # noqa: E731
            scope_keys=frozenset({("10.0.0.1",)}),
            fields=("src_ip",),
            old_instance="other",
            new_instance="nf-a-1",
            move_id=1,
        )
        first, second = make(), make()
        stub = SimpleNamespace(n_workers=2, _barrier_counts={}, instance_id="me")
        list(NFInstance._on_last_marker(stub, first))
        list(NFInstance._on_last_marker(stub, second))
        # With id(marker) keys these could alias after GC; with marker_id
        # they are two distinct, half-complete barriers.
        assert stub._barrier_counts == {
            first.marker_id: 1,
            second.marker_id: 1,
        }
        list(NFInstance._on_last_marker(stub, first))  # barrier completes
        assert first.marker_id not in stub._barrier_counts
        assert second.marker_id in stub._barrier_counts
