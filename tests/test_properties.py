"""Property-based tests (hypothesis) for core data structures & invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.bitvector import decode_tag, encode_tag
from repro.core.clock import clock_root, clock_sequence, make_clock
from repro.core.splitter import Splitter
from repro.simnet.engine import Simulator
from repro.simnet.monitor import LatencyRecorder
from repro.store.datastore import DatastoreInstance
from repro.store.operations import default_registry
from repro.store.protocol import OpRequest
from repro.store.wal import WriteAheadLog
from repro.store.store_recovery import recover_shared_key
from repro.simnet.network import Link, Network
from repro.traffic.packet import FiveTuple

ids16 = st.integers(min_value=0, max_value=(1 << 16) - 1)


class TestClockProperties:
    @given(root=st.integers(0, 255), seq=st.integers(0, (1 << 56) - 1))
    def test_clock_roundtrip(self, root, seq):
        clock = make_clock(root, seq)
        assert clock_root(clock) == root
        assert clock_sequence(clock) == seq

    @given(
        a=st.tuples(st.integers(0, 255), st.integers(0, (1 << 56) - 1)),
        b=st.tuples(st.integers(0, 255), st.integers(0, (1 << 56) - 1)),
    )
    def test_clock_injective(self, a, b):
        if a != b:
            assert make_clock(*a) != make_clock(*b)

    @given(entity=ids16, obj=ids16)
    def test_tag_roundtrip(self, entity, obj):
        assert decode_tag(encode_tag(entity, obj)) == (entity, obj)


five_tuples = st.builds(
    FiveTuple,
    src_ip=st.from_regex(r"10\.0\.[0-9]{1,2}\.[0-9]{1,2}", fullmatch=True),
    dst_ip=st.from_regex(r"52\.0\.[0-9]{1,2}\.[0-9]{1,2}", fullmatch=True),
    src_port=st.integers(1, 65535),
    dst_port=st.integers(1, 65535),
    proto=st.sampled_from([6, 17]),
)


class TestFiveTupleProperties:
    @given(ft=five_tuples)
    def test_canonical_idempotent(self, ft):
        assert ft.canonical().canonical() == ft.canonical()

    @given(ft=five_tuples)
    def test_canonical_direction_independent(self, ft):
        assert ft.canonical() == ft.reversed().canonical()

    @given(ft=five_tuples)
    def test_double_reverse_is_identity(self, ft):
        assert ft.reversed().reversed() == ft


class TestSplitterProperties:
    @given(ft=five_tuples, n=st.integers(1, 8))
    def test_both_directions_colocated(self, ft, n):
        from repro.traffic.packet import Packet

        splitter = Splitter("v", [f"v-{i}" for i in range(n)])
        fwd = splitter.route(Packet(ft))
        rev = splitter.route(Packet(ft.reversed()))
        assert fwd == rev

    @given(ft=five_tuples)
    def test_route_stable(self, ft):
        from repro.traffic.packet import Packet

        splitter = Splitter("v", ["v-0", "v-1", "v-2"])
        assert splitter.route(Packet(ft)) == splitter.route(Packet(ft))


class TestOperationProperties:
    @given(start=st.integers(-1000, 1000), deltas=st.lists(st.integers(-50, 50), max_size=30))
    def test_incr_sums(self, start, deltas):
        registry = default_registry()
        value = start
        for delta in deltas:
            value, _ = registry.apply("incr", value, (delta,))
        assert value == start + sum(deltas)

    @given(items=st.lists(st.integers(), max_size=30))
    def test_push_pop_fifo(self, items):
        registry = default_registry()
        value = None
        for item in items:
            value, _ = registry.apply("push", value, (item,))
        popped = []
        for _ in items:
            value, out = registry.apply("pop", value, ())
            popped.append(out)
        assert popped == items
        if items:
            assert value == []

    @given(items=st.lists(st.integers(), max_size=30))
    def test_ops_never_mutate_inputs(self, items):
        registry = default_registry()
        original = list(items)
        registry.apply("push", items, (99,))
        registry.apply("pop", items, ())
        assert items == original


class TestStoreSerializationProperty:
    @given(
        per_client=st.lists(st.integers(1, 15), min_size=1, max_size=4),
        interleave_seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_concurrent_increments_never_lost(self, per_client, interleave_seed):
        """N clients issue increments concurrently; the serialized total is
        exact regardless of interleaving (Theorem B.1.1's consistency)."""
        sim = Simulator()
        network = Network(sim, Link(latency_us=1.0 + (interleave_seed % 7)), seed=interleave_seed)
        store = DatastoreInstance(sim, network, "store0")
        from repro.simnet.rpc import RpcEndpoint

        def client_proc(endpoint, count, stagger):
            def body():
                yield sim.timeout(stagger)
                for index in range(count):
                    yield endpoint.call_event(
                        "store0",
                        OpRequest(
                            key="k",
                            op="incr",
                            args=(1,),
                            instance=endpoint.name,
                            blocking=(index % 2 == 0),
                        ),
                    )

            return body

        for index, count in enumerate(per_client):
            endpoint = RpcEndpoint(sim, network, f"c{index}")
            sim.process(client_proc(endpoint, count, index * 0.37)())
        sim.run()
        assert store.peek("k") == sum(per_client)


class TestDuplicateSuppressionProperty:
    @given(
        ops=st.lists(st.tuples(st.integers(1, 20), st.integers(0, 2)), min_size=1, max_size=40),
        replays=st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_replay_is_idempotent(self, ops, replays):
        """Applying any (clock, seq) op stream once, then replaying any
        prefix any number of times, never changes the final value."""
        sim = Simulator()
        network = Network(sim, Link(latency_us=1.0), seed=1)
        store = DatastoreInstance(sim, network, "store0")
        # dedupe op list to unique (clock, seq) identities, as a real
        # packet stream would be
        identities = sorted(set(ops))
        from repro.simnet.rpc import RpcEndpoint

        endpoint = RpcEndpoint(sim, network, "c0")

        def body():
            for clock, seq in identities:
                yield endpoint.call_event(
                    "store0",
                    OpRequest(key="k", op="incr", args=(1,), instance="c0",
                              clock=clock, seq=seq),
                )
            for _ in range(replays):
                for clock, seq in identities:
                    yield endpoint.call_event(
                        "store0",
                        OpRequest(key="k", op="incr", args=(1,), instance="rep",
                                  clock=clock, seq=seq),
                    )

        sim.run_process(body())
        assert store.peek("k") == len(identities)


class TestRecoveryProperty:
    @given(
        clocks_per_instance=st.lists(
            st.lists(st.integers(1, 500), min_size=1, max_size=15, unique=True),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_case1_recovery_equals_direct_application(self, clocks_per_instance):
        """With no reads, re-execution from an empty checkpoint always
        rebuilds the same commutative-op total (Theorem B.5.2)."""
        wals = {}
        total = 0
        for index, clocks in enumerate(clocks_per_instance):
            wal = WriteAheadLog(f"i{index}")
            for order, clock in enumerate(sorted(clocks)):
                wal.log_update(clock, "k", "incr", (clock,), at=float(order))
                total += clock
            wals[f"i{index}"] = wal
        outcome = recover_shared_key("k", None, wals, default_registry())
        assert outcome.value == total
        assert outcome.case == 1


class TestRecorderProperties:
    @given(values=st.lists(st.floats(0.1, 1e6), min_size=1, max_size=200))
    def test_percentiles_within_range(self, values):
        recorder = LatencyRecorder()
        for value in values:
            recorder.record(value)
        summary = recorder.summary()
        assert min(values) <= summary[50.0] <= max(values)
        assert summary[5.0] <= summary[95.0]

    @given(values=st.lists(st.floats(0.1, 1e6), min_size=2, max_size=100))
    def test_cdf_reaches_one(self, values):
        recorder = LatencyRecorder()
        for value in values:
            recorder.record(value)
        cdf = recorder.cdf()
        assert cdf[-1][1] == 1.0
