"""Overload resilience (§8): bounded queues, backpressure, admission
control, the circuit breaker, and the closed-loop autoscaler."""

import pytest

from repro.chaos.campaign import build_runtime
from repro.chaos.invariants import check_sheds_accounted
from repro.chaos.overload import (
    OVERLOAD_SCENARIOS,
    measure_load_point,
    run_overload_scenario,
)
from repro.core.instance import POLICY_SHED
from repro.simnet.engine import Channel, Simulator
from repro.simnet.nic import Nic
from repro.store.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from tests.conftest import make_packet


# ----------------------------------------------------------------------
# bounded channels (simnet)
# ----------------------------------------------------------------------


class TestBoundedChannel:
    def test_put_refused_at_capacity(self, sim):
        ch = Channel(sim, name="q", capacity=2)
        assert ch.put("a") and ch.put("b")
        assert not ch.put("c")
        assert len(ch) == 2

    def test_put_forced_bypasses_capacity(self, sim):
        ch = Channel(sim, name="q", capacity=1)
        assert ch.put("a")
        ch.put_forced("control")
        assert len(ch) == 2

    def test_put_accepted_when_getter_waiting(self, sim):
        # a waiting consumer means the item never occupies the buffer
        ch = Channel(sim, name="q", capacity=1)
        got = []

        def consumer():
            got.append((yield ch.get()))
            got.append((yield ch.get()))

        sim.process(consumer())
        ch.put("x")
        sim.run()
        assert ch.put("y")  # capacity 1, but the getter takes it directly
        sim.run()
        assert got == ["x", "y"]

    def test_space_event_fires_on_drain(self, sim):
        ch = Channel(sim, name="q", capacity=1)
        ch.put("a")
        assert not ch.has_space()
        fired = []

        def producer():
            yield ch.space_event()
            fired.append(sim.now)
            assert ch.put("b")

        def consumer():
            yield sim.timeout(5.0)
            yield ch.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert fired == [5.0]
        assert len(ch) == 1

    def test_space_event_immediate_when_unbounded(self, sim):
        ch = Channel(sim, name="q")
        assert ch.space_event().triggered
        assert ch.has_space()


# ----------------------------------------------------------------------
# NIC finite ring
# ----------------------------------------------------------------------


class TestNicRing:
    def test_tail_drop_counted_and_reported(self, sim):
        dropped = []
        nic = Nic(
            sim, 10.0, deliver=lambda item: None, queue_limit=2,
            on_drop=dropped.append,
        )
        sent = [nic.send(f"p{i}", 8_000) for i in range(5)]
        # ring of 2 (one may already be with the drain process)
        assert not all(sent)
        assert nic.drops == sent.count(False)
        assert dropped and len(dropped) == nic.drops

    def test_never_drop_exempts_control_items(self, sim):
        nic = Nic(
            sim, 10.0, deliver=lambda item: None, queue_limit=1,
            never_drop=lambda item: item == "marker",
        )
        for i in range(4):
            nic.send(f"p{i}", 8_000)
        assert nic.send("marker", 8_000)
        assert nic.drops > 0
        sim.run()
        assert nic.tx_packets >= 1  # the marker was transmitted, not shed

    def test_deliver_wait_backpressure(self, sim):
        """A receiver returning False parks the drain until space frees."""
        inbox = Channel(sim, name="inbox", capacity=1)
        nic = Nic(
            sim, 10.0, deliver=inbox.put, queue_limit=8,
            deliver_wait=inbox.space_event,
        )
        for i in range(3):
            nic.send(f"p{i}", 1_000)
        sim.run(until=100.0)
        # inbox full with one packet; drain is stalled, nothing dropped
        assert len(inbox) == 1
        assert nic.deliver_stalls >= 1
        assert nic.drops == 0
        taken = []

        def consume():
            while len(taken) < 3:
                taken.append((yield inbox.get()))

        sim.process(consume())
        sim.run()
        assert taken == ["p0", "p1", "p2"]
        assert nic.tx_packets == 3


# ----------------------------------------------------------------------
# NF instance overload policies
# ----------------------------------------------------------------------


class TestInstancePolicies:
    def _runtime(self, sim, **overrides):
        return build_runtime(sim, seed=3, **overrides)

    def test_drop_policy_sheds_into_ledger(self, sim):
        runtime = self._runtime(
            sim, instance_queue_capacity=3, overload_policy="drop"
        )
        instance = runtime.instances["entry-0"]
        for i in range(5):
            assert instance.enqueue(make_packet(sport=2000 + i))
        assert instance.stats.shed == 2
        assert runtime.network.drops["overload_queue"] == 2
        assert instance.queue_depth == 3

    def test_shed_policy_evicts_lower_priority(self, sim):
        runtime = self._runtime(
            sim, instance_queue_capacity=3, overload_policy=POLICY_SHED
        )
        instance = runtime.instances["entry-0"]
        low = [make_packet(sport=2000 + i, priority=0) for i in range(3)]
        for packet in low:
            instance.enqueue(packet)
        vip = make_packet(sport=3000, priority=5)
        assert instance.enqueue(vip)
        queued = list(instance.input._items)
        assert vip in queued
        assert instance.stats.shed == 1  # one low-priority victim evicted
        assert runtime.network.drops["overload_queue"] == 1

    def test_control_packets_never_shed(self, sim):
        runtime = self._runtime(
            sim, instance_queue_capacity=1, overload_policy="drop"
        )
        instance = runtime.instances["entry-0"]
        instance.enqueue(make_packet(sport=2000))
        replayed = make_packet(sport=2001)
        replayed.replayed = True
        assert instance.enqueue(replayed)
        assert instance.stats.shed == 0
        assert instance.queue_depth == 2  # forced past the bound

    def test_block_policy_enqueue_refuses_when_full(self, sim):
        runtime = self._runtime(
            sim, instance_queue_capacity=2, overload_policy="block"
        )
        instance = runtime.instances["entry-0"]
        assert instance.enqueue(make_packet(sport=2000))
        assert instance.enqueue(make_packet(sport=2001))
        assert not instance.enqueue(make_packet(sport=2002))
        assert instance.stats.shed == 0  # refused upstream, not shed


# ----------------------------------------------------------------------
# store admission control + circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self, sim):
        breaker = CircuitBreaker(
            sim, failure_threshold=3, open_us=100.0, jitter_frac=0.0
        )
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allows_request()

    def test_success_resets_failure_streak(self, sim):
        breaker = CircuitBreaker(sim, failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_slow_call_counts_as_failure(self, sim):
        breaker = CircuitBreaker(
            sim, failure_threshold=1, slow_call_us=50.0, jitter_frac=0.0
        )
        breaker.record_result(elapsed_us=80.0)
        assert breaker.state == OPEN
        assert breaker.stats.slow_calls == 1

    def test_half_open_probe_closes_on_success(self, sim):
        breaker = CircuitBreaker(
            sim, failure_threshold=1, open_us=100.0, jitter_frac=0.0
        )
        breaker.record_failure()
        acquired = []

        def caller():
            yield from breaker.acquire()  # waits out the open window
            acquired.append(sim.now)
            assert breaker.state == HALF_OPEN
            breaker.record_success()

        sim.process(caller())
        sim.run(until=1_000.0)
        assert acquired and acquired[0] >= 100.0
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens(self, sim):
        breaker = CircuitBreaker(
            sim, failure_threshold=1, open_us=100.0, jitter_frac=0.0
        )
        breaker.record_failure()
        first_open_until = breaker._open_until

        def caller():
            yield from breaker.acquire()
            breaker.record_failure()

        sim.process(caller())
        sim.run(until=1_000.0)
        assert breaker.state == OPEN
        assert breaker.stats.opens == 2
        assert breaker._open_until > first_open_until


class TestStoreAdmission:
    def test_rejections_are_retried_not_lost(self):
        spec = OVERLOAD_SCENARIOS["overload-burst"]
        sim_spec = type(spec)(
            name=spec.name,
            description=spec.description,
            phases=spec.phases,
            runtime_overrides=dict(store_inflight_limit=2),
        )
        outcome = run_overload_scenario(sim_spec, seed=0)
        assert outcome.store_overload_rejections > 0
        assert outcome.ok, [v.as_dict() for v in outcome.violations]

    def test_slow_store_degrades_to_stale_reads(self):
        outcome = run_overload_scenario(
            OVERLOAD_SCENARIOS["slow-store"], seed=0
        )
        assert outcome.breaker_opens > 0
        assert outcome.stale_reads > 0
        assert outcome.goodput_ratio == 1.0  # stale path keeps capacity
        assert outcome.ok, [v.as_dict() for v in outcome.violations]


# ----------------------------------------------------------------------
# scenarios & invariants
# ----------------------------------------------------------------------


class TestOverloadScenarios:
    @pytest.mark.parametrize("name", sorted(OVERLOAD_SCENARIOS))
    @pytest.mark.parametrize("autoscale", [False, True])
    def test_invariants_hold(self, name, autoscale):
        outcome = run_overload_scenario(
            OVERLOAD_SCENARIOS[name], seed=0, autoscale=autoscale
        )
        assert outcome.ok, [v.as_dict() for v in outcome.violations]
        assert outcome.injected > 0 and outcome.egressed > 0

    def test_burst_sheds_are_accounted(self):
        outcome = run_overload_scenario(
            OVERLOAD_SCENARIOS["overload-burst"], seed=0
        )
        assert sum(outcome.sheds.values()) > 0  # 2x burst must shed
        # accounting identity: injected == egressed + ledgered sheds
        assert outcome.injected == outcome.egressed + sum(outcome.sheds.values())

    def test_sheds_accounted_checker_catches_silent_loss(self):
        sim = Simulator()
        runtime = build_runtime(sim, seed=0)
        # claim one more injected packet than the run can account for
        violations = check_sheds_accounted(runtime, injected=1)
        assert violations and violations[0].invariant == "sheds-accounted"


class TestAutoscaler:
    def test_scale_out_recovers_goodput(self):
        spec = OVERLOAD_SCENARIOS["overload-burst"]
        base = run_overload_scenario(spec, seed=0, autoscale=False)
        elastic = run_overload_scenario(spec, seed=0, autoscale=True)
        assert elastic.ok and base.ok
        assert elastic.autoscaler["scale_outs"] >= 1
        out = [a for a in elastic.autoscaler["actions"] if a["kind"] == "scale_out"]
        assert out and out[0]["keys_moved"] > 0  # a real Figure-4 move
        assert elastic.goodput_ratio > base.goodput_ratio

    def test_scale_in_drains_and_retires(self):
        outcome = run_overload_scenario(
            OVERLOAD_SCENARIOS["overload-burst"], seed=0, autoscale=True
        )
        assert outcome.ok
        assert outcome.autoscaler["scale_ins"] >= 1
        ins = [a for a in outcome.autoscaler["actions"] if a["kind"] == "scale_in"]
        assert all(a["ok"] for a in ins)
        assert all(a["keys_moved"] > 0 for a in ins)  # state handed back

    def test_knee_moves_right_with_autoscaler(self):
        off = measure_load_point(2.0, autoscale=False, seed=0)
        on = measure_load_point(2.0, autoscale=True, seed=0)
        assert not off["violations"] and not on["violations"]
        assert on["scale_outs"] >= 1
        assert on["goodput_ratio"] > off["goodput_ratio"]


class TestStoreElasticity:
    """Store-side scale-out: rejections trip the hysteresis, a vertex is
    re-homed onto a fresh replica, and the rejection rate drops."""

    def test_rejections_drop_after_store_scale_out(self):
        spec = OVERLOAD_SCENARIOS["store-hot"]
        base = run_overload_scenario(spec, seed=0, autoscale=False)
        elastic = run_overload_scenario(spec, seed=0, autoscale=True)
        assert base.ok, [v.as_dict() for v in base.violations]
        assert elastic.ok, [v.as_dict() for v in elastic.violations]
        # degradation run: sustained admission-control rejections, no loss
        assert base.store_overload_rejections > 0
        assert base.autoscaler is None
        # elastic run: exactly one store scale-out, with real state moved
        assert elastic.autoscaler["store_scale_outs"] == 1
        actions = [
            a for a in elastic.autoscaler["actions"]
            if a["kind"] == "store_scale_out"
        ]
        assert len(actions) == 1 and actions[0]["keys_moved"] > 0
        # the point of the satellite: splitting the hot store sheds load
        assert (
            elastic.store_overload_rejections
            < 0.95 * base.store_overload_rejections
        )

    def test_scale_out_re_homes_exactly_one_vertex(self):
        spec = OVERLOAD_SCENARIOS["store-hot"]
        collected = {}
        outcome = run_overload_scenario(
            spec, seed=0, autoscale=True,
            collect_runtime=lambda rt: collected.update(rt=rt),
        )
        assert outcome.ok, [v.as_dict() for v in outcome.violations]
        runtime = collected["rt"]
        assert len(runtime.stores) == 2
        original, replica = runtime.stores
        action = next(
            a for a in outcome.autoscaler["actions"]
            if a["kind"] == "store_scale_out"
        )
        vertex = action["vertex"]
        assert replica.name == action["instance"]
        # routing: the migrated vertex is pinned to the replica, the rest
        # kept their homes on the original node
        assert runtime.store.vertices_assigned_to(replica.name) == [vertex]
        others = [
            v for v in ("entry", "mid", "exit") if v != vertex
        ]
        assert runtime.store.vertices_assigned_to(original.name) == sorted(others)
        # state: the replica holds the vertex's keys; the original node
        # garbage-collected its dead copies after the drain
        assert any(key.startswith(vertex + "\x1f") for key in replica.keys())
        assert not any(
            key.startswith(vertex + "\x1f") for key in original.keys()
        )
        # the replica carries traffic, not just metadata
        assert replica.stats.ops_applied > 0

    def test_single_tenant_store_is_not_split(self):
        # overload-burst chains entry+exit onto one store, but with
        # max_stores=1 the watcher must skip rather than thrash
        spec = OVERLOAD_SCENARIOS["store-hot"]
        capped = type(spec)(
            name=spec.name,
            description=spec.description,
            phases=spec.phases,
            store_heavy=spec.store_heavy,
            store_scale=spec.store_scale,
            runtime_overrides=spec.runtime_overrides,
            max_stores=1,
        )
        outcome = run_overload_scenario(capped, seed=0, autoscale=True)
        assert outcome.ok, [v.as_dict() for v in outcome.violations]
        assert outcome.autoscaler["store_scale_outs"] == 0
        assert outcome.autoscaler["store_skipped"] > 0
