"""Unit tests for the remaining small modules: util, failure injection,
bench helpers, cluster routing, and NF instance odds and ends."""

import os

import pytest

from repro.bench.calibration import bench_scale, params_for_model
from repro.bench.report import ResultTable, fmt_gbps, fmt_us, write_result
from repro.core.chain_runtime import ChainRuntime
from repro.core.dag import LogicalChain
from repro.simnet.failures import FailureInjector
from repro.store.cluster import StoreCluster
from repro.store.datastore import DatastoreInstance
from repro.store.keys import StateKey
from repro.util import fields_subset, stable_hash
from tests.conftest import make_packet
from tests.test_cloning import SlowCounterNF


class TestUtil:
    def test_stable_hash_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))

    def test_stable_hash_types(self):
        assert isinstance(stable_hash(b"bytes"), int)
        assert stable_hash("x") != stable_hash("y")

    def test_fields_subset(self):
        assert fields_subset(("src_ip",), ("src_ip", "dst_ip"))
        assert not fields_subset(("src_ip", "dst_port"), ("src_ip",))
        assert fields_subset((), ("src_ip",))


class TestFailureInjector:
    def test_fail_at_schedules(self, sim, network):
        store = DatastoreInstance(sim, network, "doomed")
        injector = FailureInjector(sim)
        observed = []
        injector.on_failure(observed.append)
        injector.fail_at(50.0, store)
        sim.run(until=100.0)
        assert not store.alive
        assert observed == [store]
        assert injector.failed == [store]

    def test_fail_in_the_past_rejected(self, sim, network):
        store = DatastoreInstance(sim, network, "d2")
        injector = FailureInjector(sim)
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            injector.fail_at(5.0, store)

    def test_correlated_failure(self, sim, network):
        a = DatastoreInstance(sim, network, "a")
        b = DatastoreInstance(sim, network, "b")
        injector = FailureInjector(sim)
        times = []
        injector.on_failure(lambda c: times.append(sim.now))
        injector.fail_together_at(30.0, [a, b])
        sim.run(until=50.0)
        assert times == [30.0, 30.0]
        assert not a.alive and not b.alive


class TestBenchHelpers:
    def test_params_for_models(self):
        eo = params_for_model("EO")
        assert eo.caching_enabled is False and eo.wait_for_acks is True
        na = params_for_model("EO+C+NA")
        assert na.caching_enabled is True and na.wait_for_acks is False
        with pytest.raises(ValueError):
            params_for_model("T")
        with pytest.raises(ValueError):
            params_for_model("bogus")

    def test_bench_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.01")
        assert bench_scale() == 0.01
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert bench_scale(0.002) == 0.002

    def test_result_table_render(self):
        table = ResultTable("Title", ["a", "bb"])
        table.add("x", 1)
        table.add("longer", 22)
        table.note("a note")
        rendered = table.render()
        assert "Title" in rendered
        assert "longer  22" in rendered
        assert "note: a note" in rendered

    def test_write_result_persists(self, tmp_path, monkeypatch):
        import repro.bench.report as report

        monkeypatch.setattr(report, "results_dir", lambda: str(tmp_path))
        table = ResultTable("T", ["c"])
        table.add("v")
        path = write_result("unit", [table], echo=False)
        assert os.path.exists(path)
        assert "T" in open(path).read()

    def test_formatters(self):
        assert fmt_us(1.234) == "1.23us"
        assert fmt_us(None) == "-"
        assert fmt_gbps(9.5) == "9.50Gbps"


class TestClusterRouting:
    def test_vertex_assignment_wins(self, sim, network):
        a = DatastoreInstance(sim, network, "sa")
        b = DatastoreInstance(sim, network, "sb")
        cluster = StoreCluster([a, b])
        cluster.assign_vertex("nat", "sb")
        key = StateKey("nat", "x").storage_key()
        assert cluster.endpoint_for_key(key) == "sb"

    def test_assignment_to_unknown_instance_rejected(self, sim, network):
        cluster = StoreCluster([DatastoreInstance(sim, network, "only")])
        with pytest.raises(KeyError):
            cluster.assign_vertex("nat", "ghost")

    def test_replace_updates_assignments(self, sim, network):
        a = DatastoreInstance(sim, network, "olds")
        cluster = StoreCluster([a])
        cluster.assign_vertex("nat", "olds")
        b = DatastoreInstance(sim, network, "news")
        cluster.replace_instance("olds", b)
        key = StateKey("nat", "x").storage_key()
        assert cluster.endpoint_for_key(key) == "news"

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            StoreCluster([])

    def test_register_custom_op_everywhere(self, sim, network):
        a = DatastoreInstance(sim, network, "ca")
        b = DatastoreInstance(sim, network, "cb")
        cluster = StoreCluster([a, b])
        cluster.register_custom_op("noop", lambda v: (v, v))
        assert "noop" in a.registry and "noop" in b.registry


class TestInstanceOddsAndEnds:
    def _runtime(self, sim):
        chain = LogicalChain("odds")
        chain.add_vertex("slow", SlowCounterNF, entry=True)
        return ChainRuntime(sim, chain)

    def test_allocation_query(self, sim, network):
        runtime = self._runtime(sim)
        from repro.simnet.rpc import RpcEndpoint

        asker = RpcEndpoint(sim, runtime.network, "asker")

        def body():
            value = yield asker.call_event("slow-0", "allocation")
            return value

        allocation = sim.run_process(body())
        assert allocation["instances"] == ["slow-0"]
        assert "partition_fields" in allocation

    def test_unknown_query_rejected(self, sim):
        runtime = self._runtime(sim)
        from repro.simnet.rpc import RpcEndpoint

        asker = RpcEndpoint(sim, runtime.network, "asker")

        def body():
            yield asker.call_event("slow-0", "bogus")

        proc = sim.process(body())
        sim.run()
        assert not proc.ok

    def test_queue_depth_counts_all_queues(self, sim):
        runtime = self._runtime(sim)
        instance = runtime.instances_of("slow")[0]
        for index in range(5):
            instance.enqueue(make_packet(sport=6000 + index))
        assert instance.queue_depth == 5

    def test_failed_instance_rejects_nothing_but_does_nothing(self, sim):
        runtime = self._runtime(sim)
        instance = runtime.instances_of("slow")[0]
        instance.fail()
        instance.enqueue(make_packet())
        sim.run(until=10_000)
        assert instance.stats.processed == 0

    def test_stop_buffering_idempotent(self, sim):
        runtime = self._runtime(sim)
        instance = runtime.add_instance("slow", "b", start_buffering=True)
        instance.enqueue(make_packet(sport=7000))
        sim.run(until=100)
        assert instance.stats.buffered == 1
        instance.stop_buffering()
        instance.stop_buffering()  # no-op
        sim.run(until=10_000)
        assert instance.stats.processed == 1
