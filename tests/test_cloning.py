"""Integration tests for straggler mitigation (R5, §5.3).

The invariant under test: cloning + replay + replication never changes
what the chain computes — no duplicate state updates, no duplicate
outputs downstream, regardless of which instance is retained.
"""


from repro.core.chain_runtime import ChainRuntime, RuntimeParams
from repro.core.cloning import CloneController
from repro.core.dag import LogicalChain
from repro.core.nf_api import NetworkFunction, Output
from repro.store.keys import StateKey
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from tests.conftest import make_packet


class SlowCounterNF(NetworkFunction):
    """Counts per-flow and in a shared counter; used as the straggler."""

    name = "slow"

    def state_specs(self):
        return {
            "hits": StateObjectSpec(
                "hits", Scope.PER_FLOW, AccessPattern.READ_WRITE_OFTEN, initial_value=0
            ),
            "total": StateObjectSpec(
                "total", Scope.CROSS_FLOW, AccessPattern.WRITE_MOSTLY, (), initial_value=0
            ),
        }

    def process(self, packet, state):
        flow = packet.five_tuple.canonical().key()
        yield from state.update("hits", flow, "incr", 1)
        yield from state.update("total", None, "incr", 1)
        return [Output(packet)]


class SinkCounterNF(NetworkFunction):
    name = "sink"

    def state_specs(self):
        return {
            "seen": StateObjectSpec(
                "seen", Scope.CROSS_FLOW, AccessPattern.WRITE_MOSTLY, (), initial_value=0
            ),
        }

    def process(self, packet, state):
        yield from state.update("seen", None, "incr", 1)
        return [Output(packet)]


def build_runtime(sim, extra_delay=None, suppress=True):
    chain = LogicalChain("cloning")
    chain.add_vertex("slow", SlowCounterNF, entry=True)
    chain.add_vertex("sink", SinkCounterNF)
    chain.add_edge("slow", "sink")
    params = RuntimeParams(suppress_duplicates=suppress, store_dedup=suppress)
    runtime = ChainRuntime(sim, chain, params=params)
    if extra_delay is not None:
        runtime.instances["slow-0"].extra_delay = extra_delay
    return runtime


def peek(runtime, vertex, obj):
    key = StateKey(vertex, obj).storage_key()
    return runtime.store.instance_for_key(key).peek(key)


N_PACKETS = 80


def run_with_clone(sim, runtime, keep):
    controller = CloneController(runtime)
    sessions = {}

    def source():
        for index in range(N_PACKETS):
            runtime.inject(make_packet(sport=1000 + (index % 7)))
            yield sim.timeout(3.0)
            if index == 25:
                def mitigate():
                    session = yield from controller.mitigate("slow-0")
                    sessions["s"] = session

                sim.process(mitigate())

    sim.process(source())
    sim.run(until=2_000_000)

    def resolve():
        yield from controller.retain(sessions["s"], keep)

    sim.run_process(resolve())
    sim.run(until=10_000_000)
    return sessions["s"]


class TestCloning:
    def test_clone_suppresses_duplicate_updates(self, sim):
        runtime = build_runtime(sim, extra_delay=lambda: 6.0)
        session = run_with_clone(sim, runtime, keep="clone")
        # shared counter: each packet counted exactly once despite the
        # straggler AND the clone both processing replicated traffic
        assert peek(runtime, "slow", "total") == N_PACKETS
        assert peek(runtime, "sink", "seen") == N_PACKETS
        assert session.resolved == session.clone_id
        assert runtime.stores[0].stats.ops_emulated > 0  # duplicates were caught

    def test_downstream_sees_each_packet_once(self, sim):
        runtime = build_runtime(sim, extra_delay=lambda: 6.0)
        run_with_clone(sim, runtime, keep="clone")
        sink = runtime.instances_of("sink")[0]
        assert sink.stats.processed == N_PACKETS
        assert sink.stats.duplicates_seen == 0
        assert runtime.duplicates_suppressed > 0

    def test_retaining_straggler_also_consistent(self, sim):
        runtime = build_runtime(sim, extra_delay=lambda: 6.0)
        session = run_with_clone(sim, runtime, keep="straggler")
        assert peek(runtime, "slow", "total") == N_PACKETS
        assert peek(runtime, "sink", "seen") == N_PACKETS
        assert session.resolved == session.straggler_id
        assert not runtime.instances[session.clone_id].alive

    def test_clone_takes_over_routing_slot(self, sim):
        runtime = build_runtime(sim, extra_delay=lambda: 6.0)
        session = run_with_clone(sim, runtime, keep="clone")
        splitter = runtime.splitter("slow")
        assert session.clone_id in splitter.hash_members
        assert session.straggler_id not in splitter.hash_members
        assert not runtime.instances[session.straggler_id].alive

    def test_per_flow_state_consistent_after_clone(self, sim):
        runtime = build_runtime(sim, extra_delay=lambda: 6.0)
        run_with_clone(sim, runtime, keep="clone")
        store = runtime.store.instance_for_key(StateKey("slow", "hits", ("x",)).storage_key())
        per_flow_total = sum(
            store.peek(key) for key in store.keys() if "hits" in key
        )
        assert per_flow_total == N_PACKETS

    def test_retain_clone_mid_traffic_loses_nothing(self, sim):
        # regression: the switchover to the clone must be atomic with the
        # straggler's kill — a reroute delayed behind the ownership RPC
        # would drop the packets arriving in that window
        runtime = build_runtime(sim, extra_delay=lambda: 6.0)
        controller = CloneController(runtime)
        sessions = {}

        def source():
            for index in range(N_PACKETS):
                runtime.inject(make_packet(sport=1000 + (index % 7)))
                yield sim.timeout(3.0)
                if index == 20:
                    def mitigate():
                        sessions["s"] = yield from controller.mitigate("slow-0")
                    sim.process(mitigate())
                if index == 55:  # resolve while traffic is still flowing
                    def resolve():
                        yield from controller.retain(sessions["s"], "clone")
                    sim.process(resolve())

        sim.process(source())
        sim.run(until=10_000_000)
        assert peek(runtime, "slow", "total") == N_PACKETS
        assert peek(runtime, "sink", "seen") == N_PACKETS
        assert runtime.instances_of("sink")[0].stats.processed == N_PACKETS

    def test_without_suppression_duplicates_leak(self, sim):
        # Table 5's point: disable CHC's suppression and duplicates reach
        # the downstream NF.
        runtime = build_runtime(sim, extra_delay=lambda: 6.0, suppress=False)
        run_with_clone(sim, runtime, keep="clone")
        sink = runtime.instances_of("sink")[0]
        assert sink.stats.duplicates_seen > 0
        assert peek(runtime, "sink", "seen") > N_PACKETS
