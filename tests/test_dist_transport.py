"""Transport-layer unit tests (DESIGN.md §13): codec, framing, real TCP
connections, and — at socketpair scale, no fabric — the PR's core claim
that the in-process delivery semantics (flush retransmission against the
dedup log, ``RpcGaveUp``) absorb *real* socket loss unchanged.
"""

from __future__ import annotations

import time

import pytest

from repro.dist.shard import RemoteStoreHandle
from repro.dist.transport import (
    CodecError,
    Connection,
    FrameDecoder,
    Listener,
    data_frame,
    decode_body,
    encode_frame,
    encode_value,
    make_socketpair,
)
from repro.simnet.engine import Simulator
from repro.simnet.network import Link, Network
from repro.simnet.rpc import RpcGaveUp, _Wire
from repro.store.client import StoreClient
from repro.store.cluster import StoreCluster
from repro.store.datastore import DatastoreInstance
from repro.store.protocol import OpRequest
from tests.conftest import default_specs, make_packet

FLOW = ("10.0.0.1", "52.0.0.1", 1234, 80, 6)


def roundtrip(body):
    frames = FrameDecoder().feed(encode_frame(body))
    assert len(frames) == 1
    return frames[0]


class TestCodec:
    def test_scalars_and_containers(self):
        for value in (None, True, False, 0, -7, 3.25, "x", ["a", 1], [[1], [2]]):
            assert roundtrip(value) == value

    def test_tuples_and_nonstring_dict_keys_survive(self):
        body = {("k", 5): (1, 2, "three"), 9: {"nested": (None,)}}
        out = roundtrip(body)
        assert out == body
        assert isinstance(out[("k", 5)], tuple)

    def test_wire_envelope_with_op_request(self):
        op = OpRequest(key="k", op="incr", args=(1,), instance="nf-0", clock=9, seq=2)
        frame = roundtrip(data_frame("nf-0", "store0", _Wire("request", 4, op)))
        assert frame["k"] == "d" and frame["s"] == "nf-0" and frame["t"] == "store0"
        wire = frame["p"]
        assert isinstance(wire, _Wire) and wire.request_id == 4
        inner = wire.payload
        assert isinstance(inner, OpRequest)
        assert (inner.key, inner.op, inner.args, inner.clock, inner.seq) == (
            "k", "incr", (1,), 9, 2,
        )

    def test_packet_roundtrip(self):
        packet = make_packet(clock=17)
        out = roundtrip(packet)
        assert out.five_tuple == packet.five_tuple
        assert out.clock == 17

    def test_unregistered_type_is_a_codec_error_not_pickled(self):
        class Sneaky:
            pass

        with pytest.raises(CodecError):
            encode_value(Sneaky())

    def test_unknown_class_tag_and_untagged_dict_rejected(self):
        import json as _json

        with pytest.raises(CodecError):
            decode_body(_json.dumps({"__c__": "NoSuchMessage", "a": []}).encode())
        with pytest.raises(CodecError):
            decode_body(_json.dumps({"plain": 1}).encode())


class TestFrameDecoder:
    def test_byte_at_a_time_reassembly(self):
        wire = encode_frame("hello") + encode_frame([1, 2])
        decoder = FrameDecoder()
        frames = []
        for i in range(len(wire)):
            frames.extend(decoder.feed(wire[i:i + 1]))
        assert frames == ["hello", [1, 2]]

    def test_many_frames_in_one_feed(self):
        wire = b"".join(encode_frame(i) for i in range(20))
        assert FrameDecoder().feed(wire) == list(range(20))


# ---------------------------------------------------------------------------
# real TCP: Connection / Listener / Peer
# ---------------------------------------------------------------------------


def pump_until(conn, listener, peers, predicate, timeout_s=5.0):
    """Drive both ends of a real TCP pair until ``predicate()`` holds."""
    inbound_conn, inbound_peers = [], []
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        now = time.monotonic()
        inbound_conn.extend(conn.pump(now))
        peers.extend(listener.accept_ready(now))
        for peer in peers:
            inbound_peers.extend(peer.pump())
        if predicate():
            return inbound_conn, inbound_peers
        time.sleep(0.005)
    raise AssertionError("pump_until timed out")


class TestRealTcp:
    def test_roundtrip_and_counters(self):
        listener = Listener()
        peers = []
        conn = Connection(
            "127.0.0.1",
            listener.port,
            seed=3,
            on_connect=lambda c: c.send_obj({"k": "c", "b": {"type": "hello"}}),
        )
        try:
            _, got = pump_until(
                conn, listener, peers, lambda: any(peers) and peers[0].counters.frames_received
            )
            assert got[0]["b"]["type"] == "hello"
            peers[0].send_obj(data_frame("store0", "nf-0", "pong"))
            got_c, _ = pump_until(
                conn, listener, peers, lambda: conn.counters.frames_received
            )
            assert got_c[0]["p"] == "pong"
            assert conn.counters.connects == 1
            assert conn.counters.resets == 0
        finally:
            conn.close()
            listener.close()

    def test_rst_then_reconnect_redelivers_queued_frames(self):
        listener = Listener()
        peers = []
        hellos = []
        conn = Connection(
            "127.0.0.1",
            listener.port,
            seed=5,
            on_connect=lambda c: hellos.append(1) or c.send_obj(
                {"k": "c", "b": {"type": "hello"}}
            ),
        )
        try:
            pump_until(conn, listener, peers, lambda: len(peers) == 1)
            # hard reset: SO_LINGER 0 -> client observes a real ECONNRESET
            peers[0].close(reset=True)
            pump_until(conn, listener, peers, lambda: conn.counters.resets >= 1)
            # a frame sent during the outage queues and is delivered whole
            # on the next connection, never lost and never torn mid-frame
            conn.send_obj(data_frame("nf-0", "store0", "after-outage"))
            _, got = pump_until(
                conn,
                listener,
                peers,
                lambda: len(peers) == 2 and peers[1].counters.frames_received >= 2,
                timeout_s=8.0,
            )
            payloads = [f.get("p") for f in got if isinstance(f, dict)]
            assert "after-outage" in payloads
            assert conn.counters.resets >= 1
            assert conn.counters.reconnects == 1
            assert len(hellos) == 2  # HELLO replayed after every (re)connect
        finally:
            conn.close()
            listener.close()

    def test_refuse_window_is_a_visible_partition(self):
        listener = Listener()
        listener.refuse_until_real = time.monotonic() + 0.15
        peers = []
        conn = Connection("127.0.0.1", listener.port, seed=9)
        try:
            pump_until(
                conn,
                listener,
                peers,
                lambda: listener.refused >= 1 and conn.counters.resets >= 1,
                timeout_s=5.0,
            )
            # after the window closes the client gets back in on its own
            pump_until(conn, listener, peers, lambda: len(peers) >= 1, timeout_s=8.0)
            assert conn.counters.reconnects >= 1
        finally:
            conn.close()
            listener.close()

    def test_send_queue_overflow_counts_drops(self):
        conn = Connection("127.0.0.1", 1, max_queue=2)  # never connected
        for i in range(5):
            conn.send_obj(i)
        assert conn.counters.tx_dropped == 3
        conn.close()


# ---------------------------------------------------------------------------
# engine semantics over a real socketpair (no fabric)
# ---------------------------------------------------------------------------


class SocketpairBridge:
    """The shard bridge pattern at socketpair scale: a client-side engine
    and a real :class:`DatastoreInstance` in separate Network objects,
    every envelope between them crossing a real (AF_UNIX) socket as a
    codec frame. Loss is scripted per direction; a closed peer surfaces
    as real OSErrors on send and EOF on read, like any torn socket."""

    def __init__(self, sim, seed=7):
        self.sock_client, self.sock_store = make_socketpair()
        self.sock_client.setblocking(False)
        self.sock_store.setblocking(False)
        self.net_client = Network(sim, Link(latency_us=14.0), seed=seed)
        self.net_store = Network(sim, Link(latency_us=14.0), seed=seed ^ 1)
        self.store = DatastoreInstance(sim, self.net_store, "store0", n_threads=4)
        self.drop_requests = 0  # swallow next N client->store frames
        self.drop_replies = 0  # swallow next N store->client frames
        self.tx_errors = 0  # real socket errors on send (peer closed)
        self._decoder_to_store = FrameDecoder()
        self._decoder_to_client = FrameDecoder()
        self.net_client.default_route = self._client_out
        self.net_store.default_route = self._store_out

    def _client_out(self, envelope):
        if envelope.dst != "store0":
            return False
        if self.drop_requests > 0:
            self.drop_requests -= 1
            return True  # lost on the wire
        self._send(self.sock_client, envelope)
        return True

    def _store_out(self, envelope):
        if self.drop_replies > 0:
            self.drop_replies -= 1
            return True
        self._send(self.sock_store, envelope)
        return True

    def _send(self, sock, envelope):
        frame = encode_frame(
            data_frame(envelope.src, envelope.dst, envelope.payload)
        )
        try:
            sock.sendall(frame)
        except OSError:
            self.tx_errors += 1

    def pump(self):
        moved = 0
        for sock, decoder, net in (
            (self.sock_store, self._decoder_to_store, self.net_store),
            (self.sock_client, self._decoder_to_client, self.net_client),
        ):
            while True:
                try:
                    data = sock.recv(65536)
                except OSError:
                    break
                if not data:
                    break
                for frame in decoder.feed(data):
                    if isinstance(frame, dict) and frame.get("k") == "d":
                        net.send(frame["s"], frame["t"], frame["p"])
                        moved += 1
        return moved

    def close(self):
        for sock in (self.sock_client, self.sock_store):
            try:
                sock.close()
            except OSError:
                pass


def run_bridged(sim, bridge, until, step=50.0):
    """Advance virtual time in slices, moving socket frames between them."""
    idle = 0
    while sim.now < until and idle < 4:
        before = sim.now
        sim.run(until=min(before + step, until))
        moved = bridge.pump()
        idle = idle + 1 if (sim.now == before and not moved) else 0


@pytest.fixture
def bridge(sim):
    b = SocketpairBridge(sim)
    yield b
    b.close()


@pytest.fixture
def wire_client(sim, bridge):
    cluster = StoreCluster([RemoteStoreHandle("store0")])
    return StoreClient(
        sim,
        bridge.net_client,
        cluster,
        vertex_id="nf",
        instance_id="nf-0",
        specs=default_specs(),
        wait_for_acks=False,
        retransmit_timeout_us=200.0,
    )


class TestEngineOverRealSockets:
    def test_flush_survives_request_loss(self, sim, bridge, wire_client):
        bridge.drop_requests = 2  # first send + first retransmission vanish
        wire_client.begin_packet(make_packet(clock=11))

        def body():
            yield from wire_client.update("counter", None, "incr", 1)

        sim.process(body())
        run_bridged(sim, bridge, until=60_000)
        key = wire_client._key("counter", None)[1]
        assert bridge.store.peek(key) == 1  # applied exactly once
        assert wire_client.stats.retransmissions >= 2
        assert wire_client.stats.flushes_gave_up == 0
        assert not wire_client._pending_acks

    def test_ack_loss_dedups_at_store(self, sim, bridge, wire_client):
        # the store applies the op but its ACK is lost: the retransmitted
        # copy must be emulated from the dedup log, never re-applied
        bridge.drop_replies = 1
        wire_client.begin_packet(make_packet(clock=12))

        def body():
            yield from wire_client.update("counter", None, "incr", 1)

        sim.process(body())
        run_bridged(sim, bridge, until=60_000)
        key = wire_client._key("counter", None)[1]
        assert bridge.store.peek(key) == 1
        assert bridge.store.stats.ops_emulated >= 1
        assert wire_client.stats.retransmissions >= 1
        assert not wire_client._pending_acks

    def test_blocking_read_gives_up_when_peer_is_gone(self, sim, bridge, wire_client):
        # abrupt close of the store-side socket: sends fail with a real
        # OSError (EPIPE/ECONNRESET), no replies ever arrive, and the
        # bounded retry budget converts the black hole into RpcGaveUp
        bridge.sock_store.close()
        outcome = {}

        def body():
            try:
                outcome["value"] = yield from wire_client.read("flow_state", FLOW)
            except RpcGaveUp as exc:
                outcome["gaveup"] = exc

        sim.process(body())
        run_bridged(sim, bridge, until=2_000_000)
        assert "gaveup" in outcome
        assert bridge.net_client.rpc_gaveups == 1
        assert bridge.tx_errors >= 1
