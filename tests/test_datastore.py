"""Unit tests for the datastore instance (§4.3, §5.3, §5.4)."""

import pytest

from repro.simnet.rpc import RpcEndpoint
from repro.store.protocol import (
    BulkOwnerMove,
    CheckpointControl,
    CloneRegistration,
    LockReadRequest,
    NonDetRequest,
    OpRequest,
    OwnerRequest,
    PruneRequest,
    ReadRequest,
    SnapshotRequest,
    TakeoverRequest,
    WatchRequest,
    WriteRequest,
    WriteUnlockRequest,
)


@pytest.fixture
def caller(sim, network):
    return RpcEndpoint(sim, network, "nf-0")


def call(sim, caller, payload, dst="store0"):
    """Drive one RPC to completion and return its value."""
    def body():
        value = yield caller.call_event(dst, payload)
        return value

    return sim.run_process(body())


class TestOperations:
    def test_blocking_op_returns_result(self, sim, store, caller):
        result = call(sim, caller, OpRequest(key="k", op="incr", args=(5,), instance="nf-0"))
        assert result.value == 5
        assert store.peek("k") == 5

    def test_ops_serialize_in_arrival_order(self, sim, store, caller):
        for _ in range(3):
            call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="nf-0"))
        assert store.peek("k") == 3

    def test_nonblocking_op_acks_and_applies(self, sim, store, caller):
        result = call(
            sim,
            caller,
            OpRequest(key="k", op="incr", args=(2,), instance="nf-0", blocking=False),
        )
        assert result.value is None  # ACK carries no result
        assert store.peek("k") == 2

    def test_read_sees_all_prior_nonblocking_updates(self, sim, store, caller):
        def body():
            acks = [
                caller.call_event(
                    "store0",
                    OpRequest(key="k", op="incr", args=(1,), instance="nf-0", blocking=False),
                )
                for _ in range(5)
            ]
            read = yield caller.call_event("store0", ReadRequest(key="k"))
            return read

        read = sim.run_process(body())
        assert read.value == 5  # the key's thread is FIFO: updates precede the read

    def test_write_request(self, sim, store, caller):
        assert call(sim, caller, WriteRequest(key="k", value=[1, 2])) is True
        assert store.peek("k") == [1, 2]


class TestDuplicateSuppression:
    """§5.3: updates are identified by (key, clock, seq) and emulated."""

    def test_duplicate_update_emulated(self, sim, store, caller):
        op = OpRequest(key="k", op="incr", args=(1,), instance="a", clock=9, seq=0)
        first = call(sim, caller, op)
        duplicate = call(
            sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="b", clock=9, seq=0)
        )
        assert first.value == 1
        assert duplicate.value == 1
        assert duplicate.emulated
        assert store.peek("k") == 1  # applied exactly once

    def test_distinct_seq_same_clock_applies_twice(self, sim, store, caller):
        call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="a", clock=9, seq=0))
        call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="a", clock=9, seq=1))
        assert store.peek("k") == 2

    def test_emulation_returns_value_by_seq(self, sim, store, caller):
        call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="a", clock=3, seq=0))
        call(sim, caller, OpRequest(key="k", op="incr", args=(10,), instance="a", clock=3, seq=1))
        replay0 = call(
            sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="c", clock=3, seq=0)
        )
        replay1 = call(
            sim, caller, OpRequest(key="k", op="incr", args=(10,), instance="c", clock=3, seq=1)
        )
        assert replay0.value == 1 and replay0.emulated
        assert replay1.value == 11 and replay1.emulated
        assert store.peek("k") == 11

    def test_clock_zero_never_logged(self, sim, store, caller):
        call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="a", clock=0))
        call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="a", clock=0))
        assert store.peek("k") == 2
        assert store.logged_clocks("k") == []

    def test_prune_drops_log_but_remembers_clock(self, sim, store, caller):
        call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="a", clock=5))
        assert store.logged_clocks("k") == [5]
        caller.send("store0", PruneRequest(clock=5))
        sim.run()
        # the per-op duplicate-suppression log is reclaimed...
        assert store.logged_clocks("k") == []
        # ...but a straggler copy with the pruned clock is still emulated,
        # not re-applied: the prune fired because the root saw the full
        # commit vector, so every update with this clock already committed.
        # (A retransmission can be in flight when the prune lands — real
        # sockets queue frames for far longer than the prune grace period.)
        straggler = call(
            sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="a", clock=5)
        )
        assert straggler.emulated
        assert store.peek("k") == 1
        # a genuinely new packet (fresh clock) still applies
        call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="a", clock=6))
        assert store.peek("k") == 2


class TestOwnership:
    def test_claim_on_first_write(self, sim, store, caller):
        call(
            sim,
            caller,
            OpRequest(key="pf", op="set", args=(1,), instance="nf-0", claim_owner=True),
        )
        assert store.owner_of("pf") == "nf-0"

    def test_foreign_update_rejected(self, sim, store, caller):
        call(sim, caller, OwnerRequest(key="pf", instance="owner", action="associate"))
        result = call(sim, caller, OpRequest(key="pf", op="incr", args=(1,), instance="intruder"))
        assert result.value is None
        assert store.peek("pf") is None
        assert store.stats.rejected == 1

    def test_clone_may_update_owned_state(self, sim, store, caller):
        call(sim, caller, OwnerRequest(key="pf", instance="orig", action="associate"))
        call(sim, caller, CloneRegistration(original="orig", clone="clone"))
        result = call(sim, caller, OpRequest(key="pf", op="incr", args=(1,), instance="clone"))
        assert result.value == 1

    def test_clone_unregistration(self, sim, store, caller):
        call(sim, caller, OwnerRequest(key="pf", instance="orig", action="associate"))
        call(sim, caller, CloneRegistration(original="orig", clone="clone"))
        call(sim, caller, CloneRegistration(original="orig", clone="clone", register=False))
        result = call(sim, caller, OpRequest(key="pf", op="incr", args=(1,), instance="clone"))
        assert result.value is None

    def test_takeover_moves_all_keys(self, sim, store, caller):
        for key in ("a", "b", "c"):
            call(sim, caller, OwnerRequest(key=key, instance="old", action="associate"))
        moved = call(sim, caller, TakeoverRequest(old_instance="old", new_instance="new"))
        assert moved == 3
        assert all(store.owner_of(k) == "new" for k in ("a", "b", "c"))

    def test_bulk_move_swaps_and_notifies(self, sim, store, caller):
        for key in ("a", "b"):
            call(sim, caller, OwnerRequest(key=key, instance="old", action="associate"))
        call(sim, caller, WatchRequest(key="rendezvous", endpoint="nf-0", kind="owner"))
        moved = call(
            sim,
            caller,
            BulkOwnerMove(keys=("a", "b"), old_instance="old", new_instance="new",
                          notify_key="rendezvous"),
        )
        sim.run()
        assert moved == 2
        assert store.owner_of("a") == "new"
        assert len(caller.messages) == 1  # owner callback delivered

    def test_disassociate_notifies_watchers(self, sim, store, caller):
        call(sim, caller, OwnerRequest(key="pf", instance="old", action="associate"))
        call(sim, caller, WatchRequest(key="pf", endpoint="nf-0", kind="owner"))
        call(sim, caller, OwnerRequest(key="pf", instance="old", action="disassociate"))
        sim.run()
        assert store.owner_of("pf") is None
        envelope = caller.messages.try_get()
        assert envelope.payload.owner is None


class TestCallbacks:
    def test_value_watchers_notified_except_updater(self, sim, network, store, caller):
        other = RpcEndpoint(sim, network, "nf-1")
        call(sim, caller, WatchRequest(key="k", endpoint="nf-0", kind="value"))
        call(sim, caller, WatchRequest(key="k", endpoint="nf-1", kind="value"))
        call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="nf-0"))
        sim.run()
        assert len(caller.messages) == 0  # the updater is excluded
        envelope = other.messages.try_get()
        assert envelope.payload.value == 1


class TestTsMetadata:
    def test_per_key_ts_tracks_last_clock_per_instance(self, sim, store, caller):
        call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="i1", clock=4))
        call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="i2", clock=9))
        result = call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="i1", clock=12))
        assert result.ts == {"i1": 12, "i2": 9}

    def test_read_returns_ts(self, sim, store, caller):
        call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="i1", clock=4))
        read = call(sim, caller, ReadRequest(key="k"))
        assert read.ts == {"i1": 4}

    def test_ts_is_per_key(self, sim, store, caller):
        call(sim, caller, OpRequest(key="a", op="incr", args=(1,), instance="i1", clock=4))
        read = call(sim, caller, ReadRequest(key="b"))
        assert read.ts == {}


class TestCheckpointNonDetMisc:
    def test_checkpoint_snapshot(self, sim, store, caller):
        call(sim, caller, OpRequest(key="k", op="incr", args=(7,), instance="i", clock=2))
        call(sim, caller, CheckpointControl())
        call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="i", clock=3))
        assert store.last_checkpoint.data["k"] == 7
        assert store.last_checkpoint.ts["k"] == {"i": 2}
        assert store.peek("k") == 8

    def test_periodic_checkpoints(self, sim, network):
        from repro.store.datastore import DatastoreInstance

        periodic = DatastoreInstance(
            sim, network, "store-ckpt", checkpoint_interval_us=100.0
        )
        sim.run(until=350)
        assert periodic.last_checkpoint is not None
        assert periodic.last_checkpoint.taken_at == pytest.approx(300.0)

    def test_nondet_stable_per_clock(self, sim, store, caller):
        first = call(sim, caller, NonDetRequest(clock=5, purpose="jitter"))
        again = call(sim, caller, NonDetRequest(clock=5, purpose="jitter"))
        other = call(sim, caller, NonDetRequest(clock=6, purpose="jitter"))
        assert first == again
        assert first != other

    def test_nondet_time_kind(self, sim, store, caller):
        t1 = call(sim, caller, NonDetRequest(clock=5, purpose="ts", kind="time"))
        def later():
            yield sim.timeout(100)
            value = yield caller.call_event("store0", NonDetRequest(clock=5, purpose="ts", kind="time"))
            return value
        t2 = sim.run_process(later())
        assert t1 == t2  # replay sees the original timestamp

    def test_snapshot_request_filters_by_prefix(self, sim, store, caller):
        call(sim, caller, WriteRequest(key="nat\x1fa\x1f", value=1))
        call(sim, caller, WriteRequest(key="lb\x1fb\x1f", value=2))
        snapshot = call(sim, caller, SnapshotRequest(prefix="nat\x1f"))
        assert list(snapshot) == ["nat\x1fa\x1f"]

    def test_fail_clears_state_keeps_checkpoint(self, sim, store, caller):
        call(sim, caller, OpRequest(key="k", op="incr", args=(1,), instance="i", clock=1))
        call(sim, caller, CheckpointControl())
        store.fail()
        assert not store.alive
        assert store.peek("k") is None
        assert store.last_checkpoint.data["k"] == 1


class TestLocks:
    def test_lock_read_then_write_unlock(self, sim, store, caller):
        read = call(sim, caller, LockReadRequest(key="k", instance="a"))
        assert read.value is None
        assert call(sim, caller, WriteUnlockRequest(key="k", value=10, instance="a")) is True
        assert store.peek("k") == 10

    def test_second_locker_waits_for_unlock(self, sim, network, store, caller):
        other = RpcEndpoint(sim, network, "nf-1")
        events = []

        def holder():
            yield caller.call_event("store0", LockReadRequest(key="k", instance="a"))
            events.append(("a-locked", sim.now))
            yield sim.timeout(100)
            yield caller.call_event("store0", WriteUnlockRequest(key="k", value=1, instance="a"))
            events.append(("a-unlocked", sim.now))

        def waiter():
            yield sim.timeout(5)
            read = yield other.call_event("store0", LockReadRequest(key="k", instance="b"))
            events.append(("b-locked", sim.now, read.value))
            yield other.call_event("store0", WriteUnlockRequest(key="k", value=2, instance="b"))

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        kinds = [e[0] for e in events]
        assert kinds.index("b-locked") > kinds.index("a-unlocked")
        b_event = next(e for e in events if e[0] == "b-locked")
        assert b_event[2] == 1  # b reads a's committed write
        assert store.peek("k") == 2


class TestVertexLameDuck:
    """Per-vertex commit-but-don't-ACK (store scale-out migration)."""

    VKEY = "v\x1fcount\x1f"  # vertex "v", shared object "count"

    def test_migrating_vertex_commits_without_acks(self, sim, store, caller):
        call(sim, caller, OpRequest(key=self.VKEY, op="incr", args=(1,), instance="a"))
        store.enter_vertex_lame_duck("v")
        ack = caller.call_event(
            "store0",
            OpRequest(key=self.VKEY, op="incr", args=(1,), instance="a", blocking=False),
        )
        sim.run(until=sim.now + 1_000.0)
        assert not ack.triggered  # the ACK was dropped on the wire...
        assert store.peek(self.VKEY) == 2  # ...but the op was committed

    def test_other_vertices_keep_full_service(self, sim, store, caller):
        store.enter_vertex_lame_duck("v")
        result = call(sim, caller, OpRequest(key="other", op="incr", args=(3,), instance="a"))
        assert result.value == 3
        assert call(sim, caller, ReadRequest(key="other")).value == 3

    def test_migrating_vertex_reads_are_muted_too(self, sim, store, caller):
        call(sim, caller, OpRequest(key=self.VKEY, op="incr", args=(1,), instance="a"))
        store.enter_vertex_lame_duck("v")
        reply = caller.call_event("store0", ReadRequest(key=self.VKEY))
        sim.run(until=sim.now + 1_000.0)
        assert not reply.triggered

    def test_lame_duck_vertex_stops_signalling_root(self, sim, store, caller):
        call(
            sim, caller,
            OpRequest(key=self.VKEY, op="incr", args=(1,), instance="a",
                      clock=3, vector_tag=1),
        )
        signalled = store.stats.commit_signals
        store.enter_vertex_lame_duck("v")
        caller.call_event(
            "store0",
            OpRequest(key=self.VKEY, op="incr", args=(1,), instance="a",
                      clock=4, vector_tag=1, blocking=False),
        )
        sim.run(until=sim.now + 1_000.0)
        assert store.peek(self.VKEY) == 2
        assert store.stats.commit_signals == signalled  # no double-signal

    def test_forget_vertex_gcs_state_but_keeps_the_mute(self, sim, store, caller):
        call(sim, caller, OpRequest(key=self.VKEY, op="incr", args=(1,),
                                    instance="a", clock=9))
        call(sim, caller, OpRequest(key="other", op="incr", args=(1,), instance="a"))
        store.enter_vertex_lame_duck("v")
        assert store.forget_vertex("v") == 1
        assert store.keys() == ["other"]
        assert store.logged_clocks(self.VKEY) == []
        # the mute is the permanent backstop: a straggler's phantom write
        # is committed but stays invisible (no ACK)
        ack = caller.call_event(
            "store0",
            OpRequest(key=self.VKEY, op="incr", args=(1,), instance="a", blocking=False),
        )
        sim.run(until=sim.now + 1_000.0)
        assert not ack.triggered
