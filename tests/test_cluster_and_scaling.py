"""StoreCluster routing/replacement and operator-logic-driven scaling.

Satellites of the overload PR: the crc32 fallback-hash regression (a byte
sum collides on anagram vertex names), replace_instance routing, and the
default scaling / straggler logic driving a :class:`VertexManager` over a
real runtime end-to-end."""

import zlib

import pytest

from repro.chaos.campaign import build_runtime
from repro.core.vertex_manager import (
    VertexManager,
    default_scaling_logic,
    default_straggler_logic,
)
from repro.simnet.network import Link, Network
from repro.store.cluster import StoreCluster
from repro.store.datastore import DatastoreInstance
from repro.store.keys import StateKey
from tests.conftest import make_packet


def _cluster(sim, n=3):
    network = Network(sim, Link(latency_us=1.0), seed=1)
    return StoreCluster(
        [DatastoreInstance(sim, network, f"s{i}") for i in range(n)]
    )


class TestClusterRouting:
    # All byte-permutations of one name: a sum-based fallback hash maps
    # every one of them to the same store node.
    ANAGRAMS = ["nat1", "na1t", "1nat", "atn1"]

    def test_fallback_hash_spreads_anagram_vertices(self, sim):
        cluster = _cluster(sim, n=3)
        endpoints = {
            vertex: cluster.endpoint_for_key(
                StateKey(vertex, "obj").storage_key()
            )
            for vertex in self.ANAGRAMS
        }
        assert len(set(endpoints.values())) > 1, (
            f"anagram vertices all piled onto one node: {endpoints}"
        )
        # sanity: a byte sum WOULD have collided them all (the old bug)
        assert len({sum(v.encode()) % 3 for v in self.ANAGRAMS}) == 1

    def test_fallback_hash_is_crc32(self, sim):
        cluster = _cluster(sim, n=3)
        key = StateKey("nat1", "obj").storage_key()
        expected = f"s{zlib.crc32(b'nat1') % 3}"
        assert cluster.endpoint_for_key(key) == expected

    def test_assignment_overrides_hash(self, sim):
        cluster = _cluster(sim, n=3)
        cluster.assign_vertex("nat1", "s0")
        assert cluster.endpoint_for_key(
            StateKey("nat1", "obj").storage_key()
        ) == "s0"
        with pytest.raises(KeyError):
            cluster.assign_vertex("nat1", "nope")

    def test_bare_keys_hash_as_their_own_vertex(self, sim):
        cluster = _cluster(sim, n=3)
        assert cluster.endpoint_for_key("plainkey") == (
            f"s{zlib.crc32(b'plainkey') % 3}"
        )

    def test_replace_instance_keeps_routing(self, sim):
        cluster = _cluster(sim, n=3)
        cluster.assign_vertex("fw", "s1")
        network = Network(sim, Link(latency_us=1.0), seed=2)
        replacement = DatastoreInstance(sim, network, "s1r1")
        cluster.replace_instance("s1", replacement)
        # explicit assignment follows the replacement
        assert cluster.endpoint_for_key(
            StateKey("fw", "obj").storage_key()
        ) == "s1r1"
        # hash slots are positional: whatever hashed to slot 1 still does
        assert cluster.instance_named("s1r1") is replacement
        assert [i.name for i in cluster.instances] == ["s0", "s1r1", "s2"]
        with pytest.raises(KeyError):
            cluster.replace_instance("s1", replacement)  # old name is gone

    def test_add_replica_pins_without_touching_the_hash_ring(self, sim):
        cluster = _cluster(sim, n=3)
        before = {
            vertex: cluster.endpoint_for_key(
                StateKey(vertex, "obj").storage_key()
            )
            for vertex in self.ANAGRAMS
        }
        network = Network(sim, Link(latency_us=1.0), seed=3)
        replica = DatastoreInstance(sim, network, "s0el1")
        cluster.add_replica(replica, vertices=["nat1"])
        # the pinned vertex routes to the replica...
        assert cluster.endpoint_for_key(
            StateKey("nat1", "obj").storage_key()
        ) == "s0el1"
        # ...and every unpinned vertex keeps its pre-replica hash home
        # (the replica never joins the ring, so nothing else remapped)
        for vertex in self.ANAGRAMS:
            if vertex == "nat1":
                continue
            assert cluster.endpoint_for_key(
                StateKey(vertex, "obj").storage_key()
            ) == before[vertex]
        assert [i.name for i in cluster.instances] == [
            "s0", "s1", "s2", "s0el1"
        ]
        assert cluster.vertices_assigned_to("s0el1") == ["nat1"]
        with pytest.raises(ValueError):
            cluster.add_replica(replica)  # already registered


class TestScalingLogicEndToEnd:
    def test_manager_drives_scale_up_then_scale_down(self, sim):
        """§3's loop with the default scaling logic: burst -> scale_up
        decision; calm with >1 instance -> scale_down after hysteresis."""
        runtime = build_runtime(sim, seed=5, proc_time_overrides={"entry": 12.0})
        decisions = []
        manager = VertexManager(
            sim,
            "entry",
            instances_fn=lambda: runtime.instances_of("entry"),
            interval_us=50.0,
            scaling_logic=default_scaling_logic(
                queue_threshold=10, low_threshold=1, settle_intervals=3
            ),
        )
        manager.on_scale.append(decisions.append)

        def source():
            for index in range(120):
                runtime.inject(make_packet(sport=1000 + (index % 8)))
                yield sim.timeout(1.0)

        def react():
            # a second instance joins once the manager asks (what the
            # AutoscaleController automates; here we drive it by hand)
            while not decisions:
                yield sim.timeout(10.0)
            runtime.add_instance("entry", "b")

        sim.process(source())
        sim.process(react())
        sim.run(until=200_000.0)
        manager.stop()

        kinds = [d["action"] for d in decisions]
        assert "scale_up" in kinds
        assert decisions[0]["backlog"] > 10
        assert "scale_down" in kinds  # calm after the burst, 2 instances
        assert kinds.index("scale_up") < kinds.index("scale_down")

    def test_manager_flags_straggler_instance(self, sim):
        runtime = build_runtime(sim, seed=6)
        runtime.add_instance("entry", "b", join_splitter=True)
        # make instance b pathologically slow
        runtime.instances["entry-b"].extra_delay = lambda: 60.0
        flagged = []
        manager = VertexManager(
            sim,
            "entry",
            instances_fn=lambda: runtime.instances_of("entry"),
            interval_us=500.0,
            straggler_logic=default_straggler_logic(threshold=0.5),
        )
        manager.on_straggler.append(flagged.append)

        def source():
            for index in range(400):
                runtime.inject(make_packet(sport=1000 + (index % 16)))
                yield sim.timeout(2.0)

        sim.process(source())
        sim.run(until=100_000.0)
        manager.stop()
        assert "entry-b" in flagged
