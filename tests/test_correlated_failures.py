"""Correlated failures (Table 3 and §5.4 "Correlated failures").

Table 3's matrix: an NF instance and the root can fail together and both
recover — *if* the packet log is kept in the store (a locally-logged root
loses the log, and with it the ability to replay the NF's in-flight
packets). A component failing together with the store instance holding
its state cannot recover (the paper's stated limitation, addressed only
by store replication).
"""


from repro.core.chain_runtime import ChainRuntime, RuntimeParams
from repro.core.dag import LogicalChain
from repro.core.recovery import fail_over_nf, fail_over_root
from repro.simnet.engine import Simulator
from repro.store.keys import StateKey
from repro.store.store_recovery import recover_store_instance
from tests.conftest import make_packet
from tests.test_cloning import SinkCounterNF, SlowCounterNF

N_PACKETS = 60


def build(sim, **params):
    chain = LogicalChain("corr")
    chain.add_vertex("slow", SlowCounterNF, entry=True)
    chain.add_vertex("sink", SinkCounterNF)
    chain.add_edge("slow", "sink")
    return ChainRuntime(sim, chain, params=RuntimeParams(**params))


def peek(runtime, vertex, obj):
    key = StateKey(vertex, obj).storage_key()
    return runtime.store.instance_for_key(key).peek(key)


def run_workload(sim, runtime, crash=None):
    def source():
        for index in range(N_PACKETS):
            runtime.inject(make_packet(sport=1000 + (index % 5)))
            yield sim.timeout(3.0)
            if crash is not None:
                crash(index)

    sim.process(source())
    sim.run(until=60_000_000)


class TestNfPlusRoot:
    def test_recoverable_with_store_kept_log(self):
        sim = Simulator()
        runtime = build(sim, log_in_store=True)
        results = {}

        def crash(index):
            if index == 20:
                # simultaneous fail-stop of the NF and the root
                runtime.instances["slow-0"].fail()
                runtime.root.fail()

                def recover():
                    results["root"] = yield from fail_over_root(runtime)
                    results["nf"] = yield from fail_over_nf(runtime, "slow-0")

                sim.process(recover())

        run_workload(sim, runtime, crash)
        # the store-kept log survived the root: in-flight packets were
        # replayed and chain-wide state is exactly the no-failure state
        assert peek(runtime, "slow", "total") == N_PACKETS
        assert peek(runtime, "sink", "seen") == N_PACKETS
        assert results["nf"].replayed > 0

    def test_local_log_loses_in_flight_packets(self):
        sim = Simulator()
        runtime = build(sim, log_in_store=False)
        results = {}

        def crash(index):
            if index == 20:
                runtime.instances["slow-0"].fail()
                runtime.root.fail()

                def recover():
                    results["root"] = yield from fail_over_root(runtime)
                    results["nf"] = yield from fail_over_nf(runtime, "slow-0")

                sim.process(recover())

        run_workload(sim, runtime, crash)
        total = peek(runtime, "slow", "total")
        # in-flight packets at crash time are gone (network drops,
        # Theorem B.3.1) but nothing else is: the count lands close to
        # N_PACKETS and never exceeds it
        assert total is not None
        assert N_PACKETS - 25 <= total <= N_PACKETS


class TestNfPlusStore:
    def test_per_flow_state_of_dead_nf_is_lost(self):
        """The paper's stated unrecoverable case: per-flow state cached at
        the failed NF AND stored in the failed store instance dies."""
        sim = Simulator()
        runtime = build(sim)
        state = {}

        def crash(index):
            if index == 20:
                failed_store = runtime.stores[0]
                failed_store.take_checkpoint()
                runtime.instances["slow-0"].fail()   # its cache dies
                failed_store.fail()                  # and so does the store

                def recover():
                    # store recovery can only consult *surviving* clients
                    survivors = [
                        i.client for i in runtime.instances.values() if i.alive
                    ]
                    result = yield from recover_store_instance(
                        sim, runtime.network, runtime.store,
                        failed_store, survivors, "storeR",
                    )
                    state["store"] = result
                    result2 = yield from fail_over_nf(runtime, "slow-0")
                    state["nf"] = result2

                sim.process(recover())

        run_workload(sim, runtime, crash)
        replacement_store = state["store"].replacement
        # shared state: recovered from checkpoint + surviving WALs
        shared_key = StateKey("slow", "total").storage_key()
        assert replacement_store.peek(shared_key) is not None
        # per-flow state owned by the dead NF could not be read from any
        # surviving cache — Table 3's asterisk: this correlated failure is
        # unrecoverable without store replication.
        assert state["store"].per_flow_keys == 0


class TestStoreAloneStillFine:
    def test_store_failure_with_live_nfs_recovers_fully(self):
        sim = Simulator()
        runtime = build(sim)
        state = {}

        def crash(index):
            if index == 20:
                failed_store = runtime.stores[0]
                failed_store.take_checkpoint()
                failed_store.fail()

                def recover():
                    clients = [i.client for i in runtime.instances.values() if i.alive]
                    state["store"] = yield from recover_store_instance(
                        sim, runtime.network, runtime.store,
                        failed_store, clients, "storeR",
                    )

                sim.process(recover())

        run_workload(sim, runtime, crash)
        replacement = state["store"].replacement
        per_flow = [k for k in replacement.keys() if "hits" in k]
        # per-flow state fully restored from the live NF caches
        assert sum(replacement.peek(k) or 0 for k in per_flow) == N_PACKETS
