"""Maintenance director: planned day-2 operations with zero-loss gates.

Coverage in three layers:

* **end-to-end scenarios** — every named plan in
  :data:`repro.ops.campaign.SCENARIOS` (rolling upgrade, store
  replacement, topology edits, hot reload, crash-overlay) must hold the
  full invariant battery against a clean reference run;
* **gates and rollback** — a drain gate that cannot pass must abort the
  operation and restore the pre-operation structure (flows back on the
  old instance, replacement retired, vertex still spliced in);
* **primitives** — the vertex-input pause gate, the goodput monitor's
  window accounting, the operations-specific invariant checkers, and the
  chaos director's ``newest`` crash selector used by overlay schedules.
"""

import pytest

from repro.chaos.director import ChaosDirector
from repro.chaos.invariants import (
    check_no_downtime,
    check_operation_converged,
    snapshot_run,
)
from repro.chaos.schedule import CrashNF
from repro.ops import GoodputMonitor, MaintenanceDirector
from repro.ops.campaign import (
    HORIZON_US,
    OP_AT_US,
    SCENARIOS,
    ScrubNF,
    _reference_run,
    build_runtime,
    inject_workload,
    run_scenario,
)
from repro.simnet.engine import Simulator
from repro.simnet.monitor import RecoveryTimeline

_REFERENCES = {}


def _run(spec, seed, collect_runtime=None):
    """run_scenario with a per-config reference cache (keeps tests fast)."""
    key = repr(sorted(spec.runtime_overrides.items()))
    if key not in _REFERENCES:
        _REFERENCES[key] = _reference_run(seed, spec)
    return run_scenario(
        spec, seed, reference=_REFERENCES[key], collect_runtime=collect_runtime
    )


# ----------------------------------------------------------------------
# end-to-end scenarios
# ----------------------------------------------------------------------


class TestScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_holds_invariants(self, name):
        outcome = _run(SCENARIOS[name], seed=1)
        assert outcome.ok, [v.as_dict() for v in outcome.violations]
        assert outcome.operations, "director recorded no operations"
        assert all(op["status"] == "completed" for op in outcome.operations)
        assert outcome.egress_count == outcome.reference_egress_count

    def test_rolling_upgrade_zero_downtime_and_slot_reuse(self):
        caught = {}
        outcome = _run(
            SCENARIOS["rolling-upgrade"],
            seed=2,
            collect_runtime=lambda rt: caught.setdefault("rt", rt),
        )
        assert outcome.ok, [v.as_dict() for v in outcome.violations]
        # zero-downtime: every goodput window overlapping the upgrade saw
        # egress traffic
        assert outcome.goodput_windows >= 1
        assert outcome.min_window_egress >= 1
        # both original instances were replaced in place: same vertex
        # parallelism, all-new IDs, and the splitter's membership matches
        runtime = caught["rt"]
        ids = runtime.vertex_instances["entry"]
        assert len(ids) == 2
        assert all("u" in i.split("-", 1)[1] for i in ids)
        assert list(runtime.splitter("entry").hash_members) == ids

    def test_crash_overlay_recovers_and_completes(self):
        outcome = _run(SCENARIOS["upgrade-crash-overlay"], seed=1)
        assert outcome.ok, [v.as_dict() for v in outcome.violations]
        kinds = [event["kind"] for event in outcome.timeline]
        # the unplanned mid-chain crash really failed over ...
        assert "recovered" in kinds
        # ... while the planned upgrade still completed
        assert [op["status"] for op in outcome.operations] == ["completed"]


class TestVersionedUpgrade:
    def test_nf_factory_swapped_for_replacements(self):
        class ScrubNFv2(ScrubNF):
            pass

        sim = Simulator()
        runtime = build_runtime(sim, 11)
        director = MaintenanceDirector(runtime, monitor_window_us=50.0)

        def plan():
            yield sim.timeout(OP_AT_US)
            yield from director.rolling_upgrade("scrub", nf_factory=ScrubNFv2)

        sim.process(plan())
        inject_workload(sim, runtime)
        sim.run(until=HORIZON_US)

        assert [r.status for r in director.records] == ["completed"]
        assert runtime.chain.vertices["scrub"].nf_factory is ScrubNFv2
        for instance in runtime.instances_of("scrub"):
            assert isinstance(instance.nf, ScrubNFv2)


# ----------------------------------------------------------------------
# gates and rollback
# ----------------------------------------------------------------------


class TestUpgradeAbort:
    def test_drain_timeout_rolls_back(self):
        # a service time far above the packet gap keeps the entry queues
        # occupied, so the drain gate can never pass its (tiny) budget
        sim = Simulator()
        runtime = build_runtime(sim, 4, proc_time_us=400.0)
        director = MaintenanceDirector(
            runtime, drain_budget_us=60.0, monitor_window_us=50.0
        )
        before = list(runtime.vertex_instances["entry"])

        def plan():
            yield sim.timeout(OP_AT_US)
            yield from director.rolling_upgrade("entry")

        sim.process(plan())
        inject_workload(sim, runtime)
        sim.run(until=HORIZON_US)

        record = director.records[0]
        assert record.status == "aborted"
        assert "drain budget exceeded" in record.note
        # rollback: the original instances still serve the vertex and the
        # half-spawned replacement is gone
        assert runtime.vertex_instances["entry"] == before
        assert list(runtime.splitter("entry").hash_members) == before
        assert all(i in runtime.instances for i in before)
        assert not any("u" in i.split("-", 1)[1] for i in runtime.instances)
        # the chain kept running: rollback is not an outage
        assert len(runtime.egress) > 0


class TestTopologyAborts:
    def test_remove_entry_vertex_refused(self):
        sim = Simulator()
        runtime = build_runtime(sim, 5)
        director = MaintenanceDirector(runtime)
        sim.process(director.remove_vertex("entry"))
        sim.run(until=1_000.0)
        record = director.records[0]
        assert record.status == "aborted"
        assert "entry" in runtime.chain.vertices
        assert "entry" not in runtime._paused_vertices

    def test_insert_on_unknown_edge_refused(self):
        sim = Simulator()
        runtime = build_runtime(sim, 5)
        director = MaintenanceDirector(runtime)
        sim.process(director.insert_vertex("patch", ScrubNF, "scrub", "nowhere"))
        sim.run(until=1_000.0)
        record = director.records[0]
        assert record.status == "aborted"
        assert "patch" not in runtime.chain.vertices


class TestHotReload:
    def test_unknown_key_aborts_without_side_effects(self):
        sim = Simulator()
        runtime = build_runtime(sim, 6)
        director = MaintenanceDirector(runtime)
        before = runtime.params.proc_time_us
        sim.process(
            director.hot_reload({"proc_time_us": 9.0, "n_workers": 4})
        )
        sim.run(until=1_000.0)
        record = director.records[0]
        assert record.status == "aborted"
        assert "n_workers" in record.note
        assert runtime.params.proc_time_us == before

    def test_applies_to_params_and_live_objects(self):
        sim = Simulator()
        runtime = build_runtime(sim, 6)
        director = MaintenanceDirector(runtime)
        sim.process(
            director.hot_reload(
                {"proc_time_us": 3.5, "retransmit_timeout_us": 123.0}
            )
        )
        sim.run(until=1_000.0)
        assert director.records[0].status == "completed"
        assert runtime.params.proc_time_us == 3.5
        for instance in runtime.instances.values():
            assert instance.proc_time_us == 3.5
            assert instance.client.retransmit_timeout_us == 123.0


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------


class TestPauseGate:
    def test_entry_vertex_not_pausable(self):
        sim = Simulator()
        runtime = build_runtime(sim, 7)
        with pytest.raises(ValueError):
            runtime.pause_vertex_input("entry")
        with pytest.raises(KeyError):
            runtime.pause_vertex_input("nope")

    def test_paused_vertex_leaves_fastpath(self):
        sim = Simulator()
        runtime = build_runtime(sim, 7)
        runtime.pause_vertex_input("scrub")
        from repro.traffic.packet import FiveTuple, Packet

        packet = Packet(FiveTuple("10.0.0.1", "52.0.0.1", 1000, 80, 6))
        assert runtime.fast_target("scrub", packet) is None
        runtime.resume_vertex_input("scrub")

    def test_pause_window_loses_nothing(self):
        sim = Simulator()
        runtime = build_runtime(sim, 7)

        def toggle():
            yield sim.timeout(OP_AT_US)
            runtime.pause_vertex_input("scrub")
            yield sim.timeout(200.0)
            runtime.resume_vertex_input("scrub")

        sim.process(toggle())
        inject_workload(sim, runtime)
        sim.run(until=HORIZON_US)
        from repro.ops.campaign import N_PACKETS

        assert len(runtime.egress) == N_PACKETS
        assert not runtime._paused_vertices


class TestGoodputMonitor:
    def test_subwindow_operation_still_sampled(self):
        # an operation shorter than one window (armed and disarmed between
        # two window boundaries) must still record the window it touched
        sim = Simulator()
        runtime = build_runtime(sim, 8)
        monitor = GoodputMonitor(runtime, window_us=100.0)

        def blip():
            yield sim.timeout(130.0)
            monitor.arm()
            yield sim.timeout(2.0)
            monitor.disarm()

        sim.process(blip())
        sim.run(until=500.0)
        starts = [start for start, _count in monitor.windows]
        assert starts == [100.0]

    def test_unarmed_windows_not_recorded(self):
        sim = Simulator()
        runtime = build_runtime(sim, 8)
        monitor = GoodputMonitor(runtime, window_us=100.0)
        sim.run(until=500.0)
        assert monitor.windows == []


class TestOperationsCheckers:
    def test_clean_runtime_converged(self):
        sim = Simulator()
        runtime = build_runtime(sim, 9)
        assert check_operation_converged(runtime) == []

    def test_paused_vertex_flagged(self):
        sim = Simulator()
        runtime = build_runtime(sim, 9)
        runtime.pause_vertex_input("scrub")
        violations = check_operation_converged(runtime)
        assert any("paused" in v.detail for v in violations)

    def test_lame_duck_store_flagged(self):
        sim = Simulator()
        runtime = build_runtime(sim, 9)
        runtime.stores[0].enter_lame_duck()
        violations = check_operation_converged(runtime)
        assert any("lame-duck" in v.detail for v in violations)

    def test_only_untriggered_moves_count_as_stuck(self):
        sim = Simulator()
        runtime = build_runtime(sim, 9)
        done = sim.event(name="done-move")
        done.succeed()
        runtime._inflight_moves.setdefault("entry", {})[1] = done
        assert check_operation_converged(runtime) == []
        runtime._inflight_moves["entry"][2] = sim.event(name="stuck-move")
        violations = check_operation_converged(runtime)
        assert any("handover" in v.detail for v in violations)

    def test_no_downtime_checker(self):
        assert check_no_downtime([], label="x")  # no samples = a violation
        assert check_no_downtime([(0.0, 0)], floor=1, label="x")
        assert check_no_downtime([(0.0, 3), (50.0, 1)], floor=1, label="x") == []


class TestNewestCrashSelector:
    def test_newest_picks_latest_spawned_instance(self):
        sim = Simulator()
        runtime = build_runtime(sim, 10)
        fresh = runtime.add_instance("entry", "zz")
        director = ChaosDirector(
            sim, network=runtime.network, seed=0, timeline=RecoveryTimeline()
        )
        action = CrashNF(at_us=0.0, vertex="entry", newest=True)
        assert director._pick_nf(action, runtime) is fresh

    def test_default_choice_is_seeded_random(self):
        sim = Simulator()
        runtime = build_runtime(sim, 10)
        picks = set()
        for seed in range(8):
            director = ChaosDirector(sim, network=runtime.network, seed=seed)
            action = CrashNF(at_us=0.0, vertex="entry")
            picks.add(director._pick_nf(action, runtime).instance_id)
        assert len(picks) == 2  # both entry instances reachable
