"""Property-based tests of the chain-level protocols.

These throw randomized schedules at the two hardest protocols and assert
their paper-stated invariants:

* **handover** (R2): any sequence of flow moves between instances, at any
  times during a run, is loss-free and order-preserving;
* **failover** (R6): a crash at any point in the run recovers to exactly
  the no-failure state (COE).
"""

from hypothesis import given, settings, strategies as st

from repro.core.chain_runtime import ChainRuntime
from repro.core.dag import LogicalChain
from repro.core.handover import move_flows
from repro.core.recovery import fail_over_nf
from repro.simnet.engine import Simulator
from repro.store.keys import StateKey
from tests.conftest import make_packet
from tests.test_cloning import SinkCounterNF, SlowCounterNF
from tests.test_handover import FlowCounterNF, flow_packet

N_FLOWS = 4
ROUNDS = 25


class TestRandomMoveSchedules:
    @given(
        moves=st.lists(
            st.tuples(
                st.integers(1, ROUNDS - 2),   # after which round
                st.integers(0, N_FLOWS - 1),  # which flow
                st.integers(0, 1),            # to which instance
            ),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_move_schedule_is_loss_free(self, moves):
        sim = Simulator()
        FlowCounterNF.observed = []
        chain = LogicalChain("prop-moves")
        chain.add_vertex("fc", FlowCounterNF, parallelism=2, entry=True)
        runtime = ChainRuntime(sim, chain)
        splitter = runtime.splitter("fc")
        schedule = {}
        for after_round, flow, target in moves:
            schedule.setdefault(after_round, []).append((flow, f"fc-{target}"))

        def source():
            for round_ in range(ROUNDS):
                for flow in range(N_FLOWS):
                    runtime.inject(flow_packet(flow, 1000 + flow))
                    yield sim.timeout(2.0)
                for flow, target in schedule.get(round_, []):
                    key = splitter.key_of(flow_packet(flow, 1000 + flow))
                    sim.process(move_flows(runtime, "fc", [key], target))

        sim.process(source())
        sim.run(until=60_000_000)

        # loss-freeness: every flow's count is exact
        store = runtime.stores[0]
        for flow in range(N_FLOWS):
            keys = [k for k in store.keys() if f"|{1000 + flow}|" in k]
            assert keys and store.peek(keys[0]) == ROUNDS, f"flow {flow} lost updates"
        # order preservation: per-flow processing follows clock order
        per_flow = {}
        for flow_key, clock in FlowCounterNF.observed:
            per_flow.setdefault(flow_key, []).append(clock)
        for clocks in per_flow.values():
            assert clocks == sorted(clocks)
        # and every packet's log entry eventually cleared
        assert len(runtime.root.log) == 0


class TestRandomCrashPoints:
    @given(crash_after=st.integers(2, 45))
    @settings(max_examples=12, deadline=None)
    def test_failover_reaches_no_failure_state_from_any_crash_point(self, crash_after):
        n_packets = 50

        def run(crash):
            sim = Simulator()
            chain = LogicalChain("prop-crash")
            chain.add_vertex("slow", SlowCounterNF, entry=True)
            chain.add_vertex("sink", SinkCounterNF)
            chain.add_edge("slow", "sink")
            runtime = ChainRuntime(sim, chain)

            def source():
                for index in range(n_packets):
                    runtime.inject(make_packet(sport=1000 + (index % 3)))
                    yield sim.timeout(3.0)
                    if crash is not None and index == crash:
                        runtime.instances["slow-0"].fail()
                        sim.process(fail_over_nf(runtime, "slow-0"))

            sim.process(source())
            sim.run(until=60_000_000)

            def peek(vertex, obj):
                key = StateKey(vertex, obj).storage_key()
                return runtime.store.instance_for_key(key).peek(key)

            return peek("slow", "total"), peek("sink", "seen")

        assert run(crash_after) == run(None) == (n_packets, n_packets)
