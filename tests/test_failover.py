"""Integration tests for NF and root failover (R1, R6 — COE).

The headline invariant is the paper's safe-recovery guarantee: after a
failure + recovery, the state at every NF in the chain has the same value
as under no failure. The tests run the identical workload twice — once
clean, once with a mid-run crash and failover — and compare final state.
"""


from repro.core.chain_runtime import ChainRuntime, RuntimeParams
from repro.core.dag import LogicalChain
from repro.core.recovery import fail_over_nf, fail_over_root
from repro.simnet.engine import Simulator
from repro.store.keys import StateKey
from tests.conftest import make_packet
from tests.test_cloning import SinkCounterNF, SlowCounterNF


def build(sim, **params):
    chain = LogicalChain("failover")
    chain.add_vertex("slow", SlowCounterNF, entry=True)
    chain.add_vertex("sink", SinkCounterNF)
    chain.add_edge("slow", "sink")
    return ChainRuntime(sim, chain, params=RuntimeParams(**params))


def peek(runtime, vertex, obj):
    key = StateKey(vertex, obj).storage_key()
    return runtime.store.instance_for_key(key).peek(key)


N_PACKETS = 60


def run_workload(sim, runtime, crash=None):
    """Inject N_PACKETS; ``crash(index)`` callback fires between packets."""

    def source():
        for index in range(N_PACKETS):
            runtime.inject(make_packet(sport=1000 + (index % 5)))
            yield sim.timeout(3.0)
            if crash is not None:
                crash(index)

    sim.process(source())
    sim.run(until=30_000_000)


class TestNFFailover:
    def _run_with_crash(self, sim, crash_at=20, **params):
        runtime = build(sim, **params)
        results = {}

        def crash(index):
            if index == crash_at:
                runtime.instances["slow-0"].fail()

                def recover():
                    outcome = yield from fail_over_nf(runtime, "slow-0")
                    results["recovery"] = outcome

                sim.process(recover())

        run_workload(sim, runtime, crash)
        return runtime, results

    def test_recovered_state_matches_no_failure_run(self):
        clean_sim = Simulator()
        clean = build(clean_sim)
        run_workload(clean_sim, clean)

        crash_sim = Simulator()
        crashed, results = self._run_with_crash(crash_sim)

        assert results["recovery"].replayed > 0
        # COE: identical chain-wide state despite the crash.
        assert peek(crashed, "slow", "total") == peek(clean, "slow", "total") == N_PACKETS
        assert peek(crashed, "sink", "seen") == peek(clean, "sink", "seen") == N_PACKETS

    def test_per_flow_state_recovered_exactly(self):
        sim = Simulator()
        runtime, _ = self._run_with_crash(sim)
        store = runtime.stores[0]
        per_flow = {
            key: store.peek(key) for key in store.keys() if "hits" in key
        }
        assert sum(per_flow.values()) == N_PACKETS
        assert len(per_flow) == 5  # one entry per flow

    def test_replacement_owns_the_state(self):
        sim = Simulator()
        runtime, results = self._run_with_crash(sim)
        new_id = results["recovery"].new_id
        store = runtime.stores[0]
        owners = {store.owner_of(key) for key in store.keys() if "hits" in key}
        assert owners == {new_id}

    def test_all_packets_eventually_deleted(self):
        sim = Simulator()
        runtime, _ = self._run_with_crash(sim)
        assert runtime.root.stats.injected == N_PACKETS
        assert runtime.root.stats.deleted == N_PACKETS
        assert len(runtime.root.log) == 0

    def test_downstream_not_duplicated(self):
        sim = Simulator()
        runtime, _ = self._run_with_crash(sim)
        assert peek(runtime, "sink", "seen") == N_PACKETS

    def test_failover_of_alive_instance_rejected(self, sim):
        runtime = build(sim)

        def body():
            yield from fail_over_nf(runtime, "slow-0")

        proc = sim.process(body())
        sim.run()
        assert not proc.ok
        assert isinstance(proc.value, RuntimeError)


class TestRootFailover:
    def test_root_recovery_resumes_clock_and_traffic(self):
        sim = Simulator()
        runtime = build(sim)
        results = {}

        def crash(index):
            if index == 20:
                old_root = runtime.root
                old_root.fail()

                def recover():
                    outcome = yield from fail_over_root(runtime)
                    results["recovery"] = outcome

                sim.process(recover())

        run_workload(sim, runtime, crash)

        recovery = results["recovery"]
        # quick: one store read + one allocation query round
        assert recovery.duration_us < 200.0
        assert recovery.allocations == 1
        # in-flight packets at crash time are "network drops"; everything
        # injected after recovery flows normally
        total = peek(runtime, "slow", "total")
        assert total is not None and total >= N_PACKETS - 25
        assert runtime.root.stats.injected > 0

    def test_no_clock_reuse_across_root_failover(self):
        sim = Simulator()
        runtime = build(sim)
        seen_clocks = set()
        original_note = runtime.root.__class__.note_destination

        results = {}

        def crash(index):
            if index == 20:
                results["pre_crash_max"] = runtime.root.clock.last_issued_sequence
                runtime.root.fail()
                sim.process(fail_over_root(runtime))

        run_workload(sim, runtime, crash)
        from repro.core.clock import clock_sequence

        post = clock_sequence(
            __import__("repro.core.clock", fromlist=["make_clock"]).make_clock(
                0, runtime.root.clock.last_issued_sequence
            )
        )
        assert runtime.root.clock.last_issued_sequence > results["pre_crash_max"]

    def test_buffered_packets_processed_after_recovery(self):
        sim = Simulator()
        runtime = build(sim)

        runtime.root.fail()  # root down from the start

        def source():
            for index in range(10):
                runtime.inject(make_packet(sport=2000 + index))
                yield sim.timeout(2.0)

        sim.process(source())
        sim.run(until=1_000)
        assert len(runtime.root.input) == 10  # buffered while down

        def recover():
            yield from fail_over_root(runtime)

        sim.run_process(recover())
        sim.run(until=10_000_000)
        assert runtime.root.stats.injected == 10
        assert peek(runtime, "sink", "seen") == 10
