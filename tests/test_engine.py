"""Unit tests for the discrete-event engine."""

import pytest

from repro.simnet.engine import (
    Channel,
    Interrupt,
    ProcessKilled,
    SimulationError,
    Simulator,
)


class TestEventBasics:
    def test_succeed_delivers_value(self, sim):
        event = sim.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed(42)
        sim.run()
        assert seen == [42]

    def test_event_cannot_trigger_twice(self, sim):
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_callback_added_after_trigger_still_fires(self, sim):
        event = sim.event()
        event.succeed("late")
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == ["late"]


class TestTimeoutsAndTime:
    def test_timeout_advances_clock(self, sim):
        def body():
            yield sim.timeout(5.5)
            return sim.now

        assert sim.run_process(body()) == 5.5

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_run_until_stops_early(self, sim):
        sim.schedule(100.0, lambda: None)
        stopped_at = sim.run(until=10.0)
        assert stopped_at == 10.0

    def test_same_time_events_fire_in_schedule_order(self, sim):
        order = []
        sim.schedule(1.0, order.append, "a")
        sim.schedule(1.0, order.append, "b")
        sim.schedule(1.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]


class TestProcesses:
    def test_process_returns_value(self, sim):
        def body():
            yield sim.timeout(1)
            return "done"

        assert sim.run_process(body()) == "done"

    def test_nested_yield_from(self, sim):
        def inner():
            yield sim.timeout(2)
            return 10

        def outer():
            value = yield from inner()
            yield sim.timeout(3)
            return value + 1

        assert sim.run_process(outer()) == 11
        assert sim.now == 5

    def test_failed_event_raises_inside_process(self, sim):
        event = sim.event()
        sim.schedule(1.0, event.fail, ValueError("boom"))

        def body():
            yield event

        proc = sim.process(body())
        sim.run()
        assert not proc.ok
        assert isinstance(proc.value, ValueError)

    def test_killed_process_never_resumes(self, sim):
        progress = []

        def body():
            progress.append("start")
            yield sim.timeout(10)
            progress.append("after")  # must never run

        proc = sim.process(body())
        sim.schedule(5.0, proc.kill)
        sim.run()
        assert progress == ["start"]
        assert not proc.alive
        assert isinstance(proc.value, ProcessKilled)

    def test_interrupt_raises_at_wait_point(self, sim):
        caught = []

        def body():
            try:
                yield sim.timeout(100)
            except Interrupt as interrupt:
                caught.append(interrupt.cause)
            return "interrupted"

        proc = sim.process(body())
        sim.schedule(2.0, proc.interrupt, "reason")
        sim.run()
        assert caught == ["reason"]
        assert proc.value == "interrupted"

    def test_yielding_non_event_is_an_error(self, sim):
        def body():
            yield 42

        with pytest.raises(SimulationError):
            sim.process(body())
            sim.run()

    def test_deadlock_detected_by_run_process(self, sim):
        def body():
            yield sim.event()  # never triggered

        with pytest.raises(SimulationError):
            sim.run_process(body())


class TestCombinators:
    def test_any_of_returns_first(self, sim):
        def body():
            winner, value = yield sim.any_of([sim.timeout(5, "slow"), sim.timeout(2, "fast")])
            return (sim.now, value)

        resumed_at, value = sim.run_process(body())
        assert value == "fast"
        assert resumed_at == pytest.approx(2)

    def test_all_of_waits_for_all(self, sim):
        def body():
            values = yield sim.all_of([sim.timeout(5, "a"), sim.timeout(2, "b")])
            return values

        assert sim.run_process(body()) == ["a", "b"]
        assert sim.now == pytest.approx(5)

    def test_all_of_empty_fires_immediately(self, sim):
        def body():
            values = yield sim.all_of([])
            return values

        assert sim.run_process(body()) == []


class TestChannel:
    def test_fifo_order(self, sim):
        channel = Channel(sim)
        channel.put(1)
        channel.put(2)

        def body():
            first = yield channel.get()
            second = yield channel.get()
            return [first, second]

        assert sim.run_process(body()) == [1, 2]

    def test_get_blocks_until_put(self, sim):
        channel = Channel(sim)

        def consumer():
            value = yield channel.get()
            return (sim.now, value)

        proc = sim.process(consumer())
        sim.schedule(7.0, channel.put, "x")
        sim.run()
        assert proc.value == (7.0, "x")

    def test_remove_if_deletes_queued_items(self, sim):
        channel = Channel(sim)
        for value in range(6):
            channel.put(value)
        removed = channel.remove_if(lambda v: v % 2 == 0)
        assert removed == 3
        assert channel.items() == [1, 3, 5]

    def test_put_front(self, sim):
        channel = Channel(sim)
        channel.put("b")
        channel.put_front("a")
        assert channel.items() == ["a", "b"]

    def test_try_get(self, sim):
        channel = Channel(sim)
        assert channel.try_get() is None
        channel.put(9)
        assert channel.try_get() == 9


class TestDeterminism:
    def test_two_runs_identical(self):
        def run_once():
            sim = Simulator()
            trace = []
            channel = Channel(sim)

            def producer():
                for i in range(50):
                    channel.put(i)
                    yield sim.timeout(0.7)

            def consumer():
                while True:
                    value = yield channel.get()
                    trace.append((sim.now, value))

            sim.process(producer())
            sim.process(consumer())
            sim.run(until=100)
            return trace

        assert run_once() == run_once()
