"""Integration tests for elastic scaling state handover (R2, Figure 4).

The requirements under test are the paper's: **loss-freeness** (the state
update of every packet is reflected, even for packets in transit to the
old instance during the move) and **order preservation** (updates happen
in arrival order at the upstream splitter).
"""

import pytest

from repro.core.chain_runtime import ChainRuntime
from repro.core.dag import LogicalChain
from repro.core.handover import move_flows
from repro.core.nf_api import NetworkFunction, Output
from repro.store.keys import StateKey
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from repro.traffic.packet import FiveTuple
from tests.conftest import make_packet


class FlowCounterNF(NetworkFunction):
    """Per-flow packet counter; also records processing order."""

    name = "fc"
    observed = None  # class-level sink shared by all instances of a test

    def state_specs(self):
        return {
            "hits": StateObjectSpec(
                "hits", Scope.PER_FLOW, AccessPattern.READ_WRITE_OFTEN, initial_value=0
            )
        }

    def process(self, packet, state):
        flow = packet.five_tuple.canonical().key()
        yield from state.update("hits", flow, "incr", 1)
        if FlowCounterNF.observed is not None:
            FlowCounterNF.observed.append((flow, packet.clock))
        return [Output(packet)]


@pytest.fixture
def runtime(sim):
    FlowCounterNF.observed = []
    chain = LogicalChain("handover")
    chain.add_vertex("fc", FlowCounterNF, parallelism=2, entry=True)
    return ChainRuntime(sim, chain)


def flow_packet(index, sport):
    return make_packet(src=f"10.0.1.{index}", sport=sport)


class TestHandover:
    def _inject_flows(self, sim, runtime, n_flows=4, packets_per_flow=30, gap=2.0,
                      move_at_packet=None, move_fn=None):
        def source():
            for round_ in range(packets_per_flow):
                for flow in range(n_flows):
                    runtime.inject(flow_packet(flow, 1000 + flow))
                    yield sim.timeout(gap)
                if move_at_packet is not None and round_ == move_at_packet:
                    move_fn()

        sim.process(source())
        sim.run(until=60_000_000)

    def _hits_key(self, flow_index):
        flow = FiveTuple(f"10.0.1.{flow_index}", "52.0.0.1", 1000 + flow_index, 80, 6)
        return StateKey("fc", "hits", flow.canonical().key()).storage_key()

    def test_no_move_baseline(self, sim, runtime):
        self._inject_flows(sim, runtime, n_flows=4, packets_per_flow=20)
        for flow in range(4):
            key = self._hits_key(flow)
            assert runtime.store.instance_for_key(key).peek(key) == 20

    def test_move_is_loss_free(self, sim, runtime):
        splitter = runtime.splitter("fc")
        results = {}

        def do_move():
            # move every flow currently on instance fc-0 to fc-1
            keys = [
                splitter.key_of(flow_packet(i, 1000 + i))
                for i in range(4)
                if splitter.current_instance_for(
                    splitter.key_of(flow_packet(i, 1000 + i))
                ) == "fc-0"
            ]
            assert keys, "test needs at least one flow on fc-0"
            results["moved_keys"] = keys

            def mover():
                outcome = yield from move_flows(runtime, "fc", keys, "fc-1")
                results["move"] = outcome

            sim.process(mover())

        self._inject_flows(
            sim, runtime, n_flows=4, packets_per_flow=40, move_at_packet=10,
            move_fn=do_move,
        )
        assert results["move"].n_keys >= 1
        # Loss-freeness: every packet's update is reflected, across the move.
        for flow in range(4):
            key = self._hits_key(flow)
            assert runtime.store.instance_for_key(key).peek(key) == 40, key
        # Ownership moved to the new instance for the moved flows.
        for flow in range(4):
            key = self._hits_key(flow)
            scope_key = FiveTuple(
                f"10.0.1.{flow}", "52.0.0.1", 1000 + flow, 80, 6
            ).canonical().key()
            if scope_key in results["moved_keys"]:
                assert runtime.store.instance_for_key(key).owner_of(key) == "fc-1"

    def test_move_preserves_order(self, sim, runtime):
        splitter = runtime.splitter("fc")

        def do_move():
            key = splitter.key_of(flow_packet(0, 1000))
            target = (
                "fc-1" if splitter.current_instance_for(key) == "fc-0" else "fc-0"
            )
            sim.process(move_flows(runtime, "fc", [key], target))

        self._inject_flows(
            sim, runtime, n_flows=2, packets_per_flow=50, move_at_packet=15,
            move_fn=do_move,
        )
        # Order preservation: per flow, processing order == clock order.
        per_flow = {}
        for flow, clock in FlowCounterNF.observed:
            per_flow.setdefault(flow, []).append(clock)
        for flow, clocks in per_flow.items():
            assert clocks == sorted(clocks), f"flow {flow} processed out of order"

    def test_move_then_move_back(self, sim, runtime):
        splitter = runtime.splitter("fc")
        key = splitter.key_of(flow_packet(0, 1000))
        home = splitter.current_instance_for(key)
        away = "fc-1" if home == "fc-0" else "fc-0"

        def do_move():
            def mover():
                yield from move_flows(runtime, "fc", [key], away)
                yield from move_flows(runtime, "fc", [key], home)

            sim.process(mover())

        self._inject_flows(
            sim, runtime, n_flows=1, packets_per_flow=60, move_at_packet=20,
            move_fn=do_move,
        )
        hits_key = self._hits_key(0)
        assert runtime.store.instance_for_key(hits_key).peek(hits_key) == 60
        assert runtime.store.instance_for_key(hits_key).owner_of(hits_key) == home

    def test_all_packets_deleted_after_move(self, sim, runtime):
        splitter = runtime.splitter("fc")

        def do_move():
            key = splitter.key_of(flow_packet(0, 1000))
            target = (
                "fc-1" if splitter.current_instance_for(key) == "fc-0" else "fc-0"
            )
            sim.process(move_flows(runtime, "fc", [key], target))

        self._inject_flows(
            sim, runtime, n_flows=2, packets_per_flow=30, move_at_packet=10,
            move_fn=do_move,
        )
        assert runtime.root.stats.injected == 60
        assert runtime.root.stats.deleted == 60
