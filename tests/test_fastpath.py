"""Batched, fused match-action fast path (DESIGN.md §10).

The headline property is the equivalence contract: for workloads whose
per-flow decisions do not depend on cross-flow interleaving, a seeded run
with batching ON produces byte-identical per-flow egress (content and
order) and identical per-flow state values as the same seed with batching
OFF — including across a mid-run handover and an NF crash + failover.
Allocation bindings (NAT ports, LB backend picks) are compared by *key*
only: which free port a flow draws depends on cross-flow allocation
order, which batching legally reserializes (§10.4).

Unit tests pin the mechanism underneath: the chain compiler's fusion
plan, ShadowState's local-serve/decline rules, eligibility gating, and
the speculative-journal discipline (a declined action leaves zero
visible side effects).
"""

import pytest

from repro.analysis.determinism import (
    check_fastpath_equivalence,
    flow_egress_digest,
    per_flow_state,
    run_equivalence_once,
)
from repro.core.chain_runtime import ChainRuntime, RuntimeParams
from repro.core.fastpath import ShadowState, compiled_plan, install_fastpath
from repro.core.nf_api import NotFast
from repro.simnet.engine import Simulator
from repro.traffic.packet import FiveTuple, Packet
from tests.conftest import make_packet

SEEDS = (11, 23)


def flow_tuple(f):
    """The same five-tuple construction as ``seeded_workload``."""
    return FiveTuple(f"10.0.{f % 4}.{1 + f}", f"52.0.0.{1 + (f % 5)}", 5000 + f, 80, 6)


def assert_equivalent(off, on, require_fast=True):
    assert flow_egress_digest(off) == flow_egress_digest(on)
    assert per_flow_state(off) == per_flow_state(on)
    if require_fast:
        fast = sum(
            i._fastpath.stats_fast
            for i in on.instances.values()
            if i._fastpath is not None
        )
        assert fast > 0, "batched run never took the fast path — vacuous"


class TestEquivalence:
    def test_batching_on_off_equivalence(self):
        report = check_fastpath_equivalence(SEEDS, packets=300, flows=10)
        assert report["ok"], report["mismatches"]

    def test_equivalence_with_mid_batch_handover(self):
        """A Figure-4 move lands mid-run: the mark_last barrier must fence
        every queued packet in the batched worker loops too."""
        from repro.core.handover import move_flows

        def fault(sim, runtime):
            runtime.add_instance("nat", suffix="1")

            def mover():
                yield sim.timeout(100.0)
                splitter = runtime.splitter("nat")
                keys = []
                for f in range(10):
                    key = splitter.key_of(Packet(flow_tuple(f)))
                    if (
                        splitter.current_instance_for(key) == "nat-0"
                        and key not in keys
                    ):
                        keys.append(key)
                assert keys, "no flows on nat-0 — fault harness broken"
                yield from move_flows(runtime, "nat", keys[:4], "nat-1")

            sim.process(mover())

        for seed in SEEDS:
            off = run_equivalence_once(seed, False, packets=300, flows=10, fault=fault)
            on = run_equivalence_once(seed, True, packets=300, flows=10, fault=fault)
            assert_equivalent(off, on)

    def test_equivalence_with_nf_failure(self):
        """Crash + failover of a declarative NF mid-run: recovery replay
        (throttled through bounded queues) must converge both modes to the
        same per-flow egress and state."""
        from repro.core.recovery import fail_over_nf

        def fault(sim, runtime):
            def crasher():
                yield sim.timeout(150.0)
                runtime.instances["ratelimiter-0"].fail()
                yield from fail_over_nf(runtime, "ratelimiter-0")

            sim.process(crasher())

        for seed in SEEDS:
            off = run_equivalence_once(seed, False, packets=300, flows=10, fault=fault)
            on = run_equivalence_once(seed, True, packets=300, flows=10, fault=fault)
            assert_equivalent(off, on)

    def test_batch_size_one_degenerates_cleanly(self):
        off = run_equivalence_once(7, False, packets=150, flows=6)
        on = run_equivalence_once(7, True, packets=150, flows=6, batch=1)
        assert_equivalent(off, on)


class TestCompiler:
    def _runtime(self, fastpath=True):
        from repro.analysis.determinism import _declarative_chain

        sim = Simulator()
        runtime = ChainRuntime(
            sim,
            _declarative_chain(),
            params=RuntimeParams(fastpath_enabled=fastpath),
        )
        return sim, runtime

    def test_fusion_plan_covers_declarative_run(self):
        _, runtime = self._runtime()
        plan = compiled_plan(runtime)
        assert plan["declarative"] == ["firewall", "lb", "nat", "ratelimiter"]
        assert plan["fused_runs"] == [["firewall", "nat", "ratelimiter", "lb"]]

    def test_non_declarative_nf_gets_no_executor(self):
        from repro.core.dag import LogicalChain
        from repro.nfs.nat import Nat
        from repro.nfs.portscan import PortscanDetector

        sim = Simulator()
        chain = LogicalChain("mixed")
        chain.add_vertex("nat", Nat, entry=True)
        chain.add_vertex("scan", PortscanDetector)
        chain.add_edge("nat", "scan")
        runtime = ChainRuntime(sim, chain, params=RuntimeParams(fastpath_enabled=True))
        assert runtime.instances["nat-0"]._fastpath is not None
        assert runtime.instances["scan-0"]._fastpath is None
        # and the plan shows no fusable run (a single declarative vertex)
        assert compiled_plan(runtime)["fused_runs"] == []

    def test_fastpath_disabled_installs_nothing(self):
        _, runtime = self._runtime(fastpath=False)
        assert all(i._fastpath is None for i in runtime.instances.values())


class TestShadowState:
    def _client(self):
        _, runtime = TestCompiler()._runtime()
        return runtime.instances["firewall-0"].client

    def test_undeclared_table_declines(self):
        shadow = ShadowState(self._client(), tables=("conn_allowed",))
        with pytest.raises(NotFast):
            shadow.get("denied_count", None)

    def test_unknown_object_declines(self):
        shadow = ShadowState(self._client(), tables=("nonexistent",))
        with pytest.raises(NotFast):
            shadow.get("nonexistent", None)

    def test_cold_per_flow_read_declines(self):
        shadow = ShadowState(self._client(), tables=("conn_allowed", "denied_count"))
        with pytest.raises(NotFast):
            shadow.get("conn_allowed", ("10.0.0.9", "52.0.0.1", 9, 80, 6))

    def test_overwrite_op_applies_on_cold_cache(self):
        client = self._client()
        shadow = ShadowState(client, tables=("conn_allowed", "denied_count"))
        flow = ("10.0.0.9", "52.0.0.1", 9, 80, 6)
        shadow.update("conn_allowed", flow, "set", True)
        assert shadow.get("conn_allowed", flow) is True
        assert len(shadow.journal) == 1
        # speculative: nothing reached the client cache or the wire
        _, storage_key = client._key("conn_allowed", flow)
        assert storage_key not in client._cache

    def test_declined_action_leaves_no_side_effects(self):
        client = self._client()
        shadow = ShadowState(client, tables=("conn_allowed",))
        flow = ("10.0.0.9", "52.0.0.1", 9, 80, 6)
        shadow.update("conn_allowed", flow, "set", True)
        with pytest.raises(NotFast):
            shadow.update("denied_count", None, "incr", 1)  # undeclared
        # the earlier speculative write stayed in the discarded journal:
        # nothing reached the client cache
        _, storage_key = client._key("conn_allowed", flow)
        assert storage_key not in client._cache


class TestEligibility:
    def _executor(self):
        _, runtime = TestCompiler()._runtime()
        return runtime.instances["firewall-0"]._fastpath

    def test_plain_packet_is_eligible(self):
        assert self._executor().eligible(make_packet())

    def test_control_and_recovery_traffic_declines(self):
        executor = self._executor()
        assert not executor.eligible(make_packet(replayed=True))
        assert not executor.eligible(make_packet(mark_first=True))
        assert not executor.eligible(make_packet(mark_last=True))
        assert not executor.eligible(make_packet(replay_target="firewall-1"))
        marked = make_packet()
        marked.control = object()
        assert not executor.eligible(marked)


class TestBatchedTransport:
    def test_fast_run_uses_batched_rpcs_and_fused_dispatch(self):
        on = run_equivalence_once(5, True, packets=300, flows=10)
        instances = [i for i in on.instances.values() if i._fastpath is not None]
        assert sum(i._fastpath.stats_fast for i in instances) > 0
        assert sum(i._fastpath.stats_fused_in for i in instances) > 0
        # the entry NF's client actually coalesced flushes into batches
        entry_client = on.instances["firewall-0"].client
        assert entry_client.stats_batches_sent > 0

    def test_off_run_is_untouched(self):
        off = run_equivalence_once(5, False, packets=150, flows=6)
        assert all(i._fastpath is None for i in off.instances.values())
