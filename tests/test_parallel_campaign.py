"""The parallel campaign fabric (``repro.parallel``, DESIGN.md §11).

Covers the merge-determinism contract (parallel payloads byte-identical
to serial), the failure taxonomy (invariant violation vs failed run vs
infra failure), worker lifecycle (crash retry, per-run timeout), and the
per-run exception isolation the serial runner gets from the same code
path.

Worker-crash and timeout tests use ``jobs>=2`` only: the crash helpers
call ``os._exit`` / sleep forever, which must happen in a *worker*
process, never inline in the pytest process. The pool prefers the
``fork`` start method, so scenarios registered via ``monkeypatch`` are
visible inside workers.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import time

import pytest

from repro.chaos.campaign import SCENARIOS, ScenarioSpec, run_campaign
from repro.chaos.overload import aggregate_overload_payload, run_overload_campaign
from repro.parallel import (
    CampaignPool,
    InfraFailure,
    RunFailure,
    merge_sanitizer_reports,
    payloads_equal_modulo_meta,
    resolve_jobs,
)
from repro.simnet.monitor import percentiles

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="worker-lifecycle tests need the fork start method"
)


# --- module-level work functions (must be picklable) ---------------------


def _double(item):
    return item * 2


def _double_with_skew(item):
    # Completion order deliberately differs from submission order: later
    # items finish first. Exercises the submission-order merge.
    time.sleep(0.02 * ((7 - item) % 4))
    return item * 2


def _exit_on_three(item):
    if item == 3:
        os._exit(17)  # simulated segfault/OOM-kill: no cleanup, no excepthook
    return item * 2


def _hang_on_one(item):
    if item == 1:
        time.sleep(60.0)
    return item * 2


def _raise_on_two(item):
    if item == 2:
        raise RuntimeError("boom")
    return item * 2


def _crashy_schedule(_seed):
    os._exit(23)


def _hung_schedule(_seed):
    time.sleep(60.0)


def _raising_schedule(_seed):
    raise ValueError("synthetic scheduling bug")


def _spec(name, build_schedule):
    return ScenarioSpec(
        name=name, description="test scenario", build_schedule=build_schedule
    )


# --- jobs resolution -----------------------------------------------------


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs("3") == 3
    assert resolve_jobs("auto") >= 1
    assert resolve_jobs(None) == resolve_jobs("auto") == resolve_jobs(0)
    with pytest.raises(ValueError):
        resolve_jobs(-1)
    with pytest.raises(ValueError):
        resolve_jobs("-2")


# --- pool mechanics ------------------------------------------------------


def test_inline_map_preserves_order_and_walls():
    pool = CampaignPool(jobs=1)
    outcome = pool.map(_double, [5, 1, 9])
    assert outcome.ok
    assert outcome.values() == [10, 2, 18]
    assert [r.index for r in outcome.results] == [0, 1, 2]
    assert all(r.wall_s >= 0.0 for r in outcome.results)
    stats = outcome.stats()
    assert stats["jobs"] == 1
    assert stats["infra_failures"] == 0


@needs_fork
def test_parallel_map_matches_inline():
    serial = CampaignPool(jobs=1).map(_double, list(range(8)))
    parallel = CampaignPool(jobs=4).map(_double, list(range(8)))
    assert parallel.ok
    assert parallel.values() == serial.values() == [i * 2 for i in range(8)]


@needs_fork
def test_merge_determinism_under_shuffled_completion():
    # later-submitted items complete first; merged order must still be
    # submission order, run after run
    items = list(range(8))
    reference = CampaignPool(jobs=1).map(_double, items).values()
    for _ in range(2):
        outcome = CampaignPool(jobs=4).map(_double_with_skew, items)
        assert outcome.ok
        assert outcome.values() == reference
        assert [r.index for r in outcome.results] == items


@needs_fork
def test_worker_crash_is_retried_then_recorded():
    pool = CampaignPool(jobs=2, retries=1)
    outcome = pool.map(_exit_on_three, list(range(6)))
    assert not outcome.ok
    # every innocent item still completed, in submission order
    assert [(r.index, r.value) for r in outcome.results] == [
        (0, 0), (1, 2), (2, 4), (4, 8), (5, 10)
    ]
    (failure,) = outcome.infra_failures
    assert isinstance(failure, InfraFailure)
    assert failure.index == 3
    assert failure.reason == "worker-crash"
    assert failure.attempts == 2  # initial run + one retry, both crashed
    assert outcome.stats()["infra_failures"] == 1


@needs_fork
def test_hung_worker_times_out_without_wedging_the_pool():
    pool = CampaignPool(jobs=2, timeout_s=1.0)
    start = time.perf_counter()
    outcome = pool.map(_hang_on_one, list(range(4)))
    wall = time.perf_counter() - start
    assert not outcome.ok
    assert [r.value for r in outcome.results] == [0, 4, 6]
    (failure,) = outcome.infra_failures
    assert failure.index == 1
    assert failure.reason == "timeout"
    # the worker-side alarm fires at ~1s; well before the 60s sleep and
    # before the parent watchdog (2x + 5s)
    assert wall < 30.0


def test_work_function_exception_is_an_infra_failure_inline():
    # campaign layers catch their own expected exceptions; one escaping
    # to the pool is classified, recorded, and does not stop the sweep
    outcome = CampaignPool(jobs=1).map(_raise_on_two, list(range(4)))
    assert not outcome.ok
    assert [r.value for r in outcome.results] == [0, 2, 6]
    (failure,) = outcome.infra_failures
    assert failure.reason == "worker-exception"
    assert "boom" in failure.detail


# --- merge helpers -------------------------------------------------------


def test_merge_sanitizer_reports():
    assert merge_sanitizer_reports([]) is None
    assert merge_sanitizer_reports([None, None]) is None
    merged = merge_sanitizer_reports(
        [{"races": 2, "depth_peak": 5}, None, {"races": 1, "depth_peak": 9, "x": 1}]
    )
    assert merged == {"depth_peak": 9, "races": 3, "x": 1}
    assert list(merged) == sorted(merged)  # key-sorted for payload stability


def test_payloads_equal_modulo_meta():
    a = {"campaign": {"runs": 2}, "meta": {"jobs": 1, "wall_s": 9.9}}
    b = {"campaign": {"runs": 2}, "meta": {"jobs": 4, "wall_s": 0.1}}
    equal, diff = payloads_equal_modulo_meta(a, b)
    assert equal and diff == []
    b["campaign"] = {"runs": 3}
    equal, diff = payloads_equal_modulo_meta(a, b)
    assert not equal and diff == ["campaign"]


def test_run_failure_payload_shape():
    failure = RunFailure(
        scenario="s", seed=4, error="ValueError: x", context={"b": 1, "a": 2}
    )
    payload = failure.as_dict()
    # context keys are flattened after the fixed fields, in sorted order,
    # so the serialized failure list is stable across completion orders
    assert list(payload) == ["scenario", "seed", "error", "a", "b"]
    assert payload["a"] == 2 and payload["b"] == 1


# --- percentiles hardening (all-crashed scenarios) -----------------------


def test_percentiles_empty_and_single_sample():
    assert percentiles([]) == {}
    single = percentiles([42.0])
    assert set(single) == {5.0, 25.0, 50.0, 75.0, 95.0}
    assert all(v == 42.0 for v in single.values())


# --- chaos campaign: serial/parallel payload equivalence -----------------


@needs_fork
def test_chaos_campaign_payload_byte_identical_across_jobs():
    seeds = [0, 1]
    serial = run_campaign(seeds, scenario_names=["nf-crash"], jobs=1)
    parallel = run_campaign(seeds, scenario_names=["nf-crash"], jobs=4)
    assert serial.ok and parallel.ok
    a = json.dumps(serial.as_dict(), indent=2, sort_keys=True)
    b = json.dumps(parallel.as_dict(), indent=2, sort_keys=True)
    assert a == b  # byte-identical, not merely semantically equal
    # but the meta fragment records how the work was actually executed
    assert serial.pool_stats["jobs"] == 1
    assert parallel.pool_stats["jobs"] == 4
    assert parallel.pool_stats["wall_s_serial_est"] > 0


@needs_fork
def test_overload_campaign_payload_byte_identical_across_jobs():
    seeds = [0]
    kwargs = dict(scenario_names=["overload-burst"], sweep=False)
    serial = run_overload_campaign(seeds, jobs=1, **kwargs)
    parallel = run_overload_campaign(seeds, jobs=3, **kwargs)
    a = json.dumps(aggregate_overload_payload(serial), sort_keys=True)
    b = json.dumps(aggregate_overload_payload(parallel), sort_keys=True)
    assert a == b


# --- per-run exception isolation -----------------------------------------


@pytest.mark.parametrize("jobs", [1, pytest.param(2, marks=needs_fork)])
def test_per_run_exception_recorded_and_sweep_continues(monkeypatch, jobs):
    monkeypatch.setitem(SCENARIOS, "raising", _spec("raising", _raising_schedule))
    report = run_campaign(
        [0, 1], scenario_names=["raising", "nf-crash"], jobs=jobs
    )
    assert not report.ok
    # both raising seeds recorded as failed runs, both nf-crash seeds ran
    assert [(f.scenario, f.seed) for f in report.failures] == [
        ("raising", 0), ("raising", 1)
    ]
    assert all("synthetic scheduling bug" in f.error for f in report.failures)
    assert [(o.scenario, o.seed) for o in report.outcomes] == [
        ("nf-crash", 0), ("nf-crash", 1)
    ]
    assert not report.infra_failures  # a caught run failure is NOT infra
    payload = report.as_dict()
    assert payload["campaign"] == {
        "runs": 4,
        "completed": 2,
        "failed_runs": 2,
        "infra_failures": 0,
        "violations": 0,
        "ok": False,
    }
    # the all-failed scenario still gets a row: zero runs, zero
    # recoveries, no percentile keys (percentiles([]) == {})
    row = payload["scenarios"]["raising"]
    assert row["runs"] == 0 and row["failed_runs"] == 2
    assert row["recoveries"] == 0
    assert "recovery_us_percentiles" not in row


# --- worker loss through the campaign layer ------------------------------


@needs_fork
def test_campaign_worker_crash_becomes_infra_failure(monkeypatch):
    monkeypatch.setitem(SCENARIOS, "crashy", _spec("crashy", _crashy_schedule))
    report = run_campaign(
        [0], scenario_names=["crashy", "nf-crash"], jobs=2, retries=1
    )
    assert not report.ok
    (failure,) = report.infra_failures
    assert failure.reason == "worker-crash"
    assert "chaos:crashy/seed=0" in failure.item
    assert not report.failures  # a lost worker is NOT a run failure
    # the campaign finished: the innocent scenario still completed
    assert [(o.scenario, o.seed) for o in report.outcomes] == [("nf-crash", 0)]
    payload = report.as_dict()
    assert payload["campaign"]["infra_failures"] == 1
    assert payload["infra_failures"][0]["reason"] == "worker-crash"


@needs_fork
def test_campaign_hung_run_becomes_timeout_infra_failure(monkeypatch):
    monkeypatch.setitem(SCENARIOS, "hung", _spec("hung", _hung_schedule))
    report = run_campaign(
        [0], scenario_names=["hung", "nf-crash"], jobs=2, timeout_s=2.0
    )
    assert not report.ok
    (failure,) = report.infra_failures
    assert failure.reason == "timeout"
    assert [(o.scenario, o.seed) for o in report.outcomes] == [("nf-crash", 0)]


# --- tool exit codes -----------------------------------------------------


@pytest.fixture
def chaos_tool():
    tools_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "tools")
    sys.path.insert(0, tools_dir)
    try:
        import chaos_campaign

        yield chaos_campaign
    finally:
        sys.path.remove(tools_dir)


def test_chaos_tool_green_run_exits_zero(chaos_tool, tmp_path):
    out = tmp_path / "bench.json"
    rc = chaos_tool.main(
        ["--seeds", "1", "--scenarios", "nf-crash", "-o", str(out), "-q"]
    )
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["campaign"]["ok"] is True
    assert payload["meta"]["jobs"] == 1
    assert payload["meta"]["wall_s_serial_est"] >= 0


def test_chaos_tool_failed_run_exits_nonzero(chaos_tool, tmp_path, monkeypatch):
    monkeypatch.setitem(SCENARIOS, "raising", _spec("raising", _raising_schedule))
    out = tmp_path / "bench.json"
    rc = chaos_tool.main(
        ["--seeds", "1", "--scenarios", "raising", "nf-crash", "-o", str(out), "-q"]
    )
    assert rc == 1
    payload = json.loads(out.read_text())
    assert payload["campaign"]["ok"] is False
    assert payload["campaign"]["failed_runs"] == 1
    assert payload["failures"][0]["scenario"] == "raising"
    # the payload was still written in full: the good scenario has a row
    assert payload["scenarios"]["nf-crash"]["runs"] == 1


@needs_fork
def test_chaos_tool_worker_crash_exits_nonzero(chaos_tool, tmp_path, monkeypatch):
    monkeypatch.setitem(SCENARIOS, "crashy", _spec("crashy", _crashy_schedule))
    out = tmp_path / "bench.json"
    rc = chaos_tool.main(
        [
            "--seeds", "1",
            "--scenarios", "crashy", "nf-crash",
            "--jobs", "2",
            "--retries", "0",
            "-o", str(out), "-q",
        ]
    )
    assert rc == 1
    payload = json.loads(out.read_text())
    assert payload["campaign"]["ok"] is False
    assert payload["campaign"]["infra_failures"] >= 1
    assert any(
        f["reason"] == "worker-crash" for f in payload["infra_failures"]
    )


@needs_fork
def test_chaos_tool_serial_parallel_payloads_equal_modulo_meta(
    chaos_tool, tmp_path
):
    serial_out = tmp_path / "serial.json"
    parallel_out = tmp_path / "parallel.json"
    base = ["--seeds", "2", "--scenarios", "nf-crash", "-q"]
    assert chaos_tool.main(base + ["--jobs", "1", "-o", str(serial_out)]) == 0
    assert chaos_tool.main(base + ["--jobs", "4", "-o", str(parallel_out)]) == 0
    serial = json.loads(serial_out.read_text())
    parallel = json.loads(parallel_out.read_text())
    equal, diff = payloads_equal_modulo_meta(serial, parallel)
    assert equal, f"serial vs parallel payloads differ in {diff}"
    assert serial["meta"]["jobs"] == 1 and parallel["meta"]["jobs"] == 4
