"""Datastore recovery tests, including the paper's Figure 7 worked example."""


from repro.simnet.network import Network, Link
from repro.store.cluster import StoreCluster
from repro.store.client import StoreClient
from repro.store.datastore import Checkpoint, DatastoreInstance
from repro.store.operations import default_registry
from repro.store.store_recovery import (
    plan_shared_key_recovery,
    recover_shared_key,
    recover_store_instance,
    select_ts,
)
from repro.store.wal import WriteAheadLog

KEY = "v\x1fshared\x1f"


def build_figure7_wals():
    """The exact §5.4 example: four instances, one shared object.

    Store execution order: U9 U8 U13 U20 U11 R19 U22 U17 U25 U15 R27 U30
    U31 R18 U23 U32 U35, then the store crashes. Clock c's update is an
    ``incr`` by c so values are distinguishable.
    """
    logs = {
        "I1": [9, 20, 15, 35],
        "I2": [11, 22, 25, 30],
        "I3": [8, 17, 23],
        "I4": [13, 31, 32],
    }
    wals = {}
    for instance, clocks in logs.items():
        wal = WriteAheadLog(instance)
        for order, clock in enumerate(clocks):
            wal.log_update(clock, KEY, "incr", (clock,), seq=0, at=float(order))
        wals[instance] = wal

    # Reads with the TS sets of Figure 7 (value = sum of clocks executed
    # before the read, since every update is incr(clock)).
    def ts(i1, i2, i3, i4):
        return {"I1": i1, "I2": i2, "I3": i3, "I4": i4}

    wals["I4"].log_read(19, KEY, value=9 + 8 + 13 + 20 + 11, ts=ts(20, 11, 8, 13), at=10.0)
    wals["I2"].log_read(
        27, KEY, value=9 + 8 + 13 + 20 + 11 + 22 + 17 + 25 + 15, ts=ts(15, 25, 17, 13), at=20.0
    )
    wals["I3"].log_read(
        18,
        KEY,
        value=9 + 8 + 13 + 20 + 11 + 22 + 17 + 25 + 15 + 30 + 31,
        ts=ts(15, 30, 17, 31),
        at=30.0,
    )
    return wals


class TestSelectTs:
    def test_figure7_selects_ts18(self):
        wals = build_figure7_wals()
        reads = [r for wal in wals.values() for r in wal.reads]
        update_logs = {i: wal.updates_for(KEY) for i, wal in wals.items()}
        selected = select_ts(reads, update_logs)
        assert selected is not None
        assert selected.clock == 18  # "most recent clock does not correspond
        #                              to most recent read" — 27 > 18, yet R18 wins

    def test_no_reads_is_case1(self):
        assert select_ts([], {"I1": []}) is None

    def test_single_read_selected(self):
        wal = WriteAheadLog("I1")
        wal.log_update(5, KEY, "incr", (5,), at=0.0)
        wal.log_read(6, KEY, value=5, ts={"I1": 5}, at=1.0)
        selected = select_ts(wal.reads, {"I1": wal.updates_for(KEY)})
        assert selected.clock == 6


class TestRecoverSharedKey:
    def test_figure7_reexecutes_the_right_ops(self):
        wals = build_figure7_wals()
        checkpoint = Checkpoint(taken_at=0.0, data={KEY: 0}, ts={})
        plan = plan_shared_key_recovery(KEY, checkpoint, wals)
        assert plan.case == 2
        reexecuted = {(instance, entry.clock) for instance, entry in plan.entries}
        assert reexecuted == {("I1", 35), ("I3", 23), ("I4", 32)}

    def test_figure7_final_value_matches_no_failure(self):
        wals = build_figure7_wals()
        checkpoint = Checkpoint(taken_at=0.0, data={KEY: 0}, ts={})
        outcome = recover_shared_key(KEY, checkpoint, wals, default_registry())
        all_clocks = [9, 20, 15, 35, 11, 22, 25, 30, 8, 17, 23, 13, 31, 32]
        assert outcome.value == sum(all_clocks)
        assert outcome.case == 2

    def test_case1_replays_from_checkpoint_ts(self):
        wal = WriteAheadLog("I1")
        for order, clock in enumerate([1, 2, 3, 4]):
            wal.log_update(clock, KEY, "incr", (1,), at=float(order))
        checkpoint = Checkpoint(taken_at=10.0, data={KEY: 2}, ts={KEY: {"I1": 2}})
        outcome = recover_shared_key(KEY, checkpoint, {"I1": wal}, default_registry())
        assert outcome.case == 1
        assert outcome.reexecuted_ops == 2  # clocks 3 and 4
        assert outcome.value == 4

    def test_case1_unknown_instance_replays_everything(self):
        wal = WriteAheadLog("I9")
        wal.log_update(7, KEY, "incr", (7,), at=0.0)
        checkpoint = Checkpoint(taken_at=0.0, data={}, ts={})
        outcome = recover_shared_key(KEY, checkpoint, {"I9": wal}, default_registry())
        assert outcome.value == 7

    def test_no_checkpoint_at_all(self):
        wal = WriteAheadLog("I1")
        wal.log_update(1, KEY, "incr", (5,), at=0.0)
        outcome = recover_shared_key(KEY, None, {"I1": wal}, default_registry())
        assert outcome.value == 5


class TestFullStoreRecovery:
    def test_end_to_end_recovery(self, sim):
        network = Network(sim, Link(latency_us=14.0), seed=3)
        store = DatastoreInstance(sim, network, "storeA", checkpoint_interval_us=None)
        cluster = StoreCluster([store])
        from tests.conftest import default_specs

        clients = [
            StoreClient(sim, network, cluster, "v", f"i{k}", default_specs())
            for k in range(3)
        ]
        from tests.conftest import make_packet

        def workload(client, base_clock):
            def body():
                for offset in range(10):
                    client.begin_packet(make_packet(clock=base_clock + offset))
                    yield from client.update("counter", None, "incr", 1)
                    yield from client.update(
                        "flow_state",
                        ("10.0.0.%d" % base_clock, "52.0.0.1", base_clock, 80, 6),
                        "incr",
                        1,
                    )
                yield client.ack_barrier()

            return body

        for index, client in enumerate(clients):
            sim.run_process(workload(client, (index + 1) * 100)())
        store.take_checkpoint()
        # a few more shared updates after the checkpoint
        for index, client in enumerate(clients):
            def more(c=client, b=(index + 1) * 100 + 50):
                c.begin_packet(make_packet(clock=b))
                yield from c.update("counter", None, "incr", 1)
                yield c.ack_barrier()
            sim.run_process(more())

        counter_key = clients[0]._key("counter", None)[1]
        expected = store.peek(counter_key)
        assert expected == 33

        store.fail()

        def recovery():
            result = yield from recover_store_instance(
                sim, network, cluster, store, clients, "storeB"
            )
            return result

        result = sim.run_process(recovery())
        assert result.duration_us > 0
        replacement = result.replacement
        assert replacement.peek(counter_key) == expected
        assert result.per_flow_keys == 3
        # routing now points at the replacement
        assert cluster.endpoint_for_key(counter_key) == "storeB"
        # per-flow state recovered from the owners' caches
        assert result.reexecuted_ops >= 3
