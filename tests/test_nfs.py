"""Unit tests for the network functions (Table 4 + chain NFs).

NF logic is driven directly against :class:`LocalStateAPI` (the vertex
programs are framework-agnostic), with a handful of CHC-integration
checks where the store interaction matters.
"""

import pytest

from repro.core.nf_api import LocalStateAPI
from repro.nfs import (
    Dpi,
    Firewall,
    FirewallRule,
    Ids,
    LoadBalancer,
    Nat,
    PortscanDetector,
    RateLimiter,
    Scrubber,
    TrojanDetector,
)
from repro.traffic.packet import ACK, FIN, FiveTuple, PROTO_UDP, Packet, RST, SYN


def run_nf(nf, packets, state=None):
    """Drive an NF over packets with local state; returns (state, outputs)."""
    state = state or LocalStateAPI()
    for op_name, op_fn in nf.custom_operations().items():
        if op_name not in state.registry:
            state.registry.register(op_name, op_fn)
    collected = []
    clock = 0
    for packet in packets:
        if packet.clock == 0:
            clock += 1
            packet.clock = clock
        generator = nf.process(packet, state)
        try:
            while True:
                next(generator)
        except StopIteration as stop:
            collected.append(stop.value or [])
    return state, collected


def tcp_exchange(src="10.0.0.5", dst="52.0.0.9", sport=3333, dport=80, n_data=3):
    ft = FiveTuple(src, dst, sport, dport)
    packets = [Packet(ft, flags=SYN, size_bytes=60),
               Packet(ft.reversed(), flags=SYN | ACK, size_bytes=60)]
    packets += [Packet(ft, flags=ACK, size_bytes=1000) for _ in range(n_data)]
    packets.append(Packet(ft, flags=FIN | ACK, size_bytes=60))
    return packets


class TestNat:
    def test_allocates_one_port_per_connection(self):
        nat = Nat()
        state, outputs = run_nf(nat, tcp_exchange())
        mapping = state.data[("port_map", Nat.flow_key(tcp_exchange()[0]))]
        assert mapping[0] == nat.external_ip
        assert 40_000 <= mapping[1] < 40_512
        # every input packet was forwarded
        assert all(len(o) == 1 for o in outputs)

    def test_counters_track_packets(self):
        packets = tcp_exchange(n_data=5)
        state, _ = run_nf(Nat(), packets)
        assert state.data[("total_packets", None)] == len(packets)
        assert state.data[("total_tcp_packets", None)] == len(packets)

    def test_udp_not_counted_as_tcp(self):
        ft = FiveTuple("10.0.0.5", "52.0.0.9", 53, 53, PROTO_UDP)
        state, _ = run_nf(Nat(), [Packet(ft, flags=0)])
        assert state.data[("total_packets", None)] == 1
        assert ("total_tcp_packets", None) not in state.data or state.data[
            ("total_tcp_packets", None)
        ] == 0

    def test_distinct_connections_distinct_ports(self):
        nat = Nat()
        state = LocalStateAPI()
        run_nf(nat, tcp_exchange(sport=1111), state)
        run_nf(nat, tcp_exchange(sport=2222), state)
        ports = {
            value[1]
            for (obj, _k), value in state.data.items()
            if obj == "port_map"
        }
        assert len(ports) == 2

    def test_port_exhaustion_drops(self):
        nat = Nat(port_range=(40_000, 40_001))  # one port only
        state = LocalStateAPI()
        _, first = run_nf(nat, tcp_exchange(sport=1111), state)
        _, second = run_nf(nat, tcp_exchange(sport=2222), state)
        assert nat.ports_exhausted >= 1
        assert second[0] == []  # the SYN of the second connection dropped

    def test_rewrite_translates_outbound(self):
        nat = Nat(rewrite=True)
        state, outputs = run_nf(nat, tcp_exchange())
        translated = outputs[0][0].packet
        assert translated.five_tuple.src_ip == nat.external_ip
        assert translated.five_tuple.src_port >= 40_000

    def test_release_port_returns_to_pool(self):
        nat = Nat()
        state = LocalStateAPI()
        run_nf(nat, tcp_exchange(), state)

        def drive(gen):
            try:
                while True:
                    next(gen)
            except StopIteration as stop:
                return stop.value

        before = len(state.data[("available_ports", None)])
        drive(nat.release_port(state, 40_000))
        assert len(state.data[("available_ports", None)]) == before + 1


class TestPortscanDetector:
    def _probe(self, src, dport, refused):
        ft = FiveTuple(src, "52.0.0.9", 10_000 + dport, dport)
        answer_flags = (RST | ACK) if refused else (SYN | ACK)
        return [Packet(ft, flags=SYN, size_bytes=60),
                Packet(ft.reversed(), flags=answer_flags, size_bytes=60)]

    def test_scanner_flagged_after_enough_failures(self):
        detector = PortscanDetector(threshold=16.0)
        packets = []
        for port in range(80, 95):
            packets += self._probe("10.0.0.66", port, refused=True)
        run_nf(detector, packets)
        assert "10.0.0.66" in detector.flagged

    def test_benign_host_not_flagged(self):
        detector = PortscanDetector(threshold=16.0)
        packets = []
        for port in range(80, 95):
            packets += self._probe("10.0.0.7", port, refused=False)
        run_nf(detector, packets)
        assert detector.flagged == {}

    def test_mixed_outcomes_balance(self):
        detector = PortscanDetector(threshold=16.0)
        packets = []
        for port in range(80, 110):
            packets += self._probe("10.0.0.8", port, refused=(port % 2 == 0))
        run_nf(detector, packets)
        assert "10.0.0.8" not in detector.flagged

    def test_alert_emitted_once(self):
        detector = PortscanDetector(threshold=4.0)
        packets = []
        for port in range(80, 100):
            packets += self._probe("10.0.0.9", port, refused=True)
        _state, outputs = run_nf(detector, packets)
        alerts = [o for outs in outputs for o in outs if o.edge == "alert"]
        assert len(alerts) == 1

    def test_rst_without_pending_ignored(self):
        detector = PortscanDetector()
        ft = FiveTuple("52.0.0.9", "10.0.0.1", 80, 9999)
        run_nf(detector, [Packet(ft, flags=RST | ACK)])
        assert detector.conn_events == 0

    def test_duplicate_event_counting(self):
        detector = PortscanDetector()
        packets = self._probe("10.0.0.1", 80, refused=True)
        state = LocalStateAPI()
        run_nf(detector, packets, state)
        # replay the same (clock-stamped) packets: spurious duplicates
        for packet in packets:
            generator = detector.process(packet, state)
            try:
                while True:
                    next(generator)
            except StopIteration:
                pass
        assert detector.duplicate_conn_events >= 1


class TestTrojanDetector:
    def _activity(self, host, dport, clock, syn=True):
        packet = Packet(
            FiveTuple(host, "52.99.0.1", 20_000 + clock, dport),
            flags=SYN if syn else ACK,
            size_bytes=200,
        )
        packet.clock = clock
        return packet

    def test_signature_order_detected(self):
        detector = TrojanDetector()
        packets = [
            self._activity("172.16.0.1", 22, clock=10),
            self._activity("172.16.0.1", 21, clock=20),
            self._activity("172.16.0.1", 6667, clock=30),
        ]
        run_nf(detector, packets)
        assert "172.16.0.1" in detector.detections

    def test_wrong_order_not_detected(self):
        detector = TrojanDetector()
        packets = [
            self._activity("172.16.0.2", 6667, clock=10),
            self._activity("172.16.0.2", 21, clock=20),
            self._activity("172.16.0.2", 22, clock=30),
        ]
        run_nf(detector, packets)
        assert detector.detections == {}

    def test_clocks_beat_arrival_order(self):
        # packets arrive shuffled (FTP delayed past IRC) but clocks carry
        # the truth — the R4 scenario
        detector = TrojanDetector(use_clocks=True)
        packets = [
            self._activity("172.16.0.3", 22, clock=10),
            self._activity("172.16.0.3", 6667, clock=30),
            self._activity("172.16.0.3", 21, clock=20),  # late FTP
        ]
        run_nf(detector, packets)
        assert "172.16.0.3" in detector.detections

    def test_without_clocks_misses_reordered_signature(self):
        detector = TrojanDetector(use_clocks=False)
        packets = [
            self._activity("172.16.0.4", 22, clock=10),
            self._activity("172.16.0.4", 6667, clock=30),
            self._activity("172.16.0.4", 21, clock=20),
        ]
        run_nf(detector, packets)
        assert detector.detections == {}

    def test_non_activity_traffic_ignored(self):
        detector = TrojanDetector()
        run_nf(detector, [self._activity("172.16.0.5", 80, clock=1)])
        assert detector.detections == {}

    def test_alert_output_emitted(self):
        detector = TrojanDetector()
        packets = [
            self._activity("172.16.0.6", 22, clock=1),
            self._activity("172.16.0.6", 21, clock=2),
            self._activity("172.16.0.6", 6667, clock=3),
        ]
        _state, outputs = run_nf(detector, packets)
        alerts = [o for outs in outputs for o in outs if o.edge == "alert"]
        assert len(alerts) == 1
        assert "trojan:172.16.0.6" in alerts[0].packet.payload


class TestLoadBalancer:
    def test_least_loaded_chosen(self):
        lb = LoadBalancer(servers=("s1", "s2"))
        state = LocalStateAPI()
        run_nf(lb, tcp_exchange(sport=1111)[:1], state)  # SYN only
        run_nf(lb, tcp_exchange(sport=2222)[:1], state)
        loads = state.data[("server_conns", None)]
        assert loads == {"s1": 1, "s2": 1}

    def test_connection_affinity(self):
        lb = LoadBalancer(servers=("s1", "s2"))
        state, _ = run_nf(lb, tcp_exchange(n_data=4))
        key = ("conn_map", LoadBalancer.flow_key(tcp_exchange()[0]))
        assert state.data[key] in ("s1", "s2")

    def test_fin_releases_connection(self):
        lb = LoadBalancer(servers=("s1",))
        state, _ = run_nf(lb, tcp_exchange())
        assert state.data[("server_conns", None)]["s1"] == 0

    def test_byte_counter_accumulates(self):
        lb = LoadBalancer(servers=("s1",))
        packets = tcp_exchange(n_data=2)
        state, _ = run_nf(lb, packets)
        assert state.data[("server_bytes", None)] == sum(p.size_bytes for p in packets)

    def test_mid_flow_packet_without_syn_passes(self):
        lb = LoadBalancer(servers=("s1",))
        ft = FiveTuple("10.0.0.1", "52.0.0.1", 1234, 80)
        _state, outputs = run_nf(lb, [Packet(ft, flags=ACK)])
        assert len(outputs[0]) == 1

    def test_rewrite_sets_backend(self):
        lb = LoadBalancer(servers=("s9",), rewrite=True)
        _state, outputs = run_nf(lb, tcp_exchange()[:1])
        assert outputs[0][0].packet.five_tuple.dst_ip == "s9"

    def test_empty_server_list_rejected(self):
        with pytest.raises(ValueError):
            LoadBalancer(servers=())


class TestFirewall:
    def test_default_rules_allow_outbound(self):
        firewall = Firewall()
        _state, outputs = run_nf(firewall, tcp_exchange()[:1])
        assert len(outputs[0]) == 1

    def test_unmatched_traffic_denied(self):
        firewall = Firewall()
        ft = FiveTuple("203.0.113.9", "10.0.0.1", 1234, 445)
        _state, outputs = run_nf(firewall, [Packet(ft, flags=SYN)])
        assert outputs[0] == []
        assert firewall.denied == 1

    def test_connection_hole_admits_return_traffic(self):
        firewall = Firewall(rules=(FirewallRule(action="allow", src_prefix="10."),))
        ft = FiveTuple("10.0.0.5", "203.0.113.1", 1111, 80)
        state = LocalStateAPI()
        run_nf(firewall, [Packet(ft, flags=SYN)], state)
        # return direction matches no static rule but the hole admits it
        _, outputs = run_nf(firewall, [Packet(ft.reversed(), flags=SYN | ACK)], state)
        assert outputs[0] != []

    def test_rule_fields_are_anded(self):
        rule = FirewallRule(action="allow", src_prefix="10.", dst_port=80)
        assert rule.matches(Packet(FiveTuple("10.1.1.1", "x", 1, 80)))
        assert not rule.matches(Packet(FiveTuple("10.1.1.1", "x", 1, 443)))
        assert not rule.matches(Packet(FiveTuple("11.1.1.1", "x", 1, 80)))

    def test_denied_counter_updates(self):
        firewall = Firewall(rules=())
        state, _ = run_nf(firewall, tcp_exchange()[:3])
        assert state.data[("denied_count", None)] == 3


class TestIdsDpiScrubberRateLimiter:
    def test_ids_flags_heavy_flow(self):
        ids = Ids(suspicious_bytes=2_000)
        packets = tcp_exchange(n_data=5)
        _state, outputs = run_nf(ids, packets)
        suspicious = [o for outs in outputs for o in outs if o.edge == "suspicious"]
        assert suspicious  # 5 x 1000B crosses the 2000B threshold

    def test_ids_port_counter_shared_scope(self):
        ids = Ids()
        state, _ = run_nf(ids, tcp_exchange(n_data=2))
        assert state.data[("port_packets", (80,))] >= 1

    def test_dpi_scope_order_finest_first(self):
        scopes = Dpi().scope()
        assert scopes[0] == ("src_ip", "dst_ip", "src_port", "dst_port", "proto")
        assert scopes[-1] == ("src_ip",)

    def test_dpi_records_conn_outcome(self):
        dpi = Dpi()
        ft = FiveTuple("10.0.0.1", "52.0.0.1", 1234, 80)
        state, _ = run_nf(
            dpi,
            [Packet(ft, flags=SYN), Packet(ft.reversed(), flags=SYN | ACK)],
        )
        assert state.data[("conn_success", Dpi.flow_key(Packet(ft)))] is True

    def test_scrubber_counts_and_forwards(self):
        scrubber = Scrubber()
        packets = tcp_exchange(n_data=2)
        state, outputs = run_nf(scrubber, packets)
        assert all(len(o) == 1 for o in outputs)
        key = ("scrubbed", Scrubber.flow_key(packets[0]))
        assert state.data[key] == len(packets)

    def test_rate_limiter_drops_over_limit(self):
        limiter = RateLimiter(limit=3, window=1_000)
        ft = FiveTuple("10.0.0.1", "52.0.0.1", 1234, 80)
        packets = [Packet(ft, flags=ACK) for _ in range(10)]
        _state, outputs = run_nf(limiter, packets)
        forwarded = sum(1 for o in outputs if o)
        assert forwarded == 3
        assert limiter.dropped == 7

    def test_rate_limiter_window_resets(self):
        limiter = RateLimiter(limit=2, window=10)
        ft = FiveTuple("10.0.0.1", "52.0.0.1", 1234, 80)
        early = [Packet(ft, flags=ACK) for _ in range(2)]
        for index, packet in enumerate(early):
            packet.clock = index + 1
        late = Packet(ft, flags=ACK)
        late.clock = 100
        _state, outputs = run_nf(limiter, early + [late])
        assert all(outputs)

    def test_rate_limiter_validates_params(self):
        with pytest.raises(ValueError):
            RateLimiter(limit=0)
