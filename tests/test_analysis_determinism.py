"""Determinism-checker coverage (DESIGN.md §9.3).

The digest pipeline is itself part of the trusted base: `_canon` must
erase container-order noise without erasing real differences, and a
scenario run twice under one seed must digest identically — that is the
property the CI determinism-smoke job gates on.
"""

from repro.analysis.determinism import (
    _canon,
    chaos_digest,
    check_determinism,
    overload_digest,
)


class TestCanon:
    def test_dict_insertion_order_is_erased(self):
        assert _canon({"b": 1, "a": 2}) == _canon({"a": 2, "b": 1})

    def test_set_iteration_order_is_erased(self):
        assert _canon({3, 1, 2}) == _canon({2, 3, 1})

    def test_value_differences_survive(self):
        assert _canon({"a": 1}) != _canon({"a": 2})
        assert _canon([1, 2]) != _canon([2, 1])  # list order is meaningful

    def test_floats_canonicalise_by_repr(self):
        assert _canon(0.1 + 0.2) == repr(0.1 + 0.2)


class TestSameSeedDigests:
    def test_chaos_run_digests_identically_per_seed(self):
        assert chaos_digest("nf-crash", seed=3) == chaos_digest("nf-crash", seed=3)

    def test_overload_run_digests_identically_per_seed(self):
        assert overload_digest("overload-burst", seed=3) == overload_digest(
            "overload-burst", seed=3
        )

    def test_check_determinism_report_shape(self):
        report = check_determinism(seeds=[0], runs=2, chaos=["nf-crash"])
        assert report["ok"] is True
        assert report["mismatches"] == []
        (case,) = report["cases"]
        assert case["kind"] == "chaos"
        assert case["scenario"] == "nf-crash"
        assert len(case["digests"]) == 2
        assert len(set(case["digests"])) == 1
