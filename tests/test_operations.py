"""Unit tests for the offloaded-operation registry (Table 2)."""

import pytest

from repro.store.operations import UnknownOperation, default_registry


@pytest.fixture
def registry():
    return default_registry()


class TestBasicOperations:
    def test_incr_from_empty(self, registry):
        new, rv = registry.apply("incr", None, (1,))
        assert new == 1 and rv == 1

    def test_incr_custom_amount(self, registry):
        new, rv = registry.apply("incr", 10, (5,))
        assert new == 15 and rv == 15

    def test_decr(self, registry):
        new, rv = registry.apply("decr", 10, (3,))
        assert new == 7 and rv == 7

    def test_push_returns_length(self, registry):
        new, rv = registry.apply("push", [1], (2,))
        assert new == [1, 2] and rv == 2

    def test_push_does_not_mutate_input(self, registry):
        original = [1]
        registry.apply("push", original, (2,))
        assert original == [1]

    def test_pop_fifo(self, registry):
        new, rv = registry.apply("pop", [1, 2, 3], ())
        assert rv == 1 and new == [2, 3]

    def test_pop_empty_returns_none(self, registry):
        new, rv = registry.apply("pop", None, ())
        assert rv is None and new == []

    def test_compare_and_update_true(self, registry):
        new, rv = registry.apply("compare_and_update", 5, (5, 9))
        assert new == 9 and rv is True

    def test_compare_and_update_false(self, registry):
        new, rv = registry.apply("compare_and_update", 4, (5, 9))
        assert new == 4 and rv is False

    def test_set_and_get(self, registry):
        new, rv = registry.apply("set", "old", ("new",))
        assert new == "new" and rv == "new"
        new, rv = registry.apply("get", "value", ())
        assert new == "value" and rv == "value"

    def test_set_membership(self, registry):
        new, added = registry.apply("add_to_set", None, ("x",))
        assert added is True and "x" in new
        new2, added2 = registry.apply("add_to_set", new, ("x",))
        assert added2 is False and new2 == new
        new3, removed = registry.apply("remove_from_set", new2, ("x",))
        assert removed is True and "x" not in new3


class TestRegistry:
    def test_unknown_operation(self, registry):
        with pytest.raises(UnknownOperation):
            registry.apply("frobnicate", None, ())

    def test_custom_registration(self, registry):
        registry.register("double", lambda v: ((v or 0) * 2, (v or 0) * 2))
        new, rv = registry.apply("double", 21, ())
        assert new == 42 == rv

    def test_duplicate_registration_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.register("incr", lambda v: (v, v))

    def test_allow_replace(self, registry):
        registry.register("incr", lambda v, n=1: (0, 0), allow_replace=True)
        assert registry.apply("incr", 5, ()) == (0, 0)

    def test_copy_is_independent(self, registry):
        clone = registry.copy()
        clone.register("only_in_clone", lambda v: (v, v))
        assert "only_in_clone" in clone
        assert "only_in_clone" not in registry

    def test_names_sorted(self, registry):
        names = registry.names()
        assert names == sorted(names)
        assert "incr" in names
