"""Appendix A — store-computed non-deterministic values.

An NF that samples packets "randomly" must make the *same* decisions when
its packets are replayed to a failover instance or a clone — otherwise
internal state diverges from the no-failure execution. CHC replaces local
randomness with datastore-computed values keyed by the packet's logical
clock: a second request with the same clock returns the same value.
"""


from repro.core.chain_runtime import ChainRuntime
from repro.core.dag import LogicalChain
from repro.core.nf_api import NetworkFunction, Output
from repro.core.recovery import fail_over_nf
from repro.simnet.engine import Simulator
from repro.store.keys import StateKey
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from tests.conftest import make_packet


class SamplingNF(NetworkFunction):
    """Counts a "random" 30% sample of packets (store-driven randomness)."""

    name = "sampler"
    decisions = None  # test-level sink: list of (instance marker, clock, sampled)

    def __init__(self):
        self.marker = object()

    def state_specs(self):
        return {
            "sampled": StateObjectSpec(
                "sampled", Scope.CROSS_FLOW, AccessPattern.WRITE_MOSTLY, (),
                initial_value=0,
            ),
        }

    def process(self, packet, state):
        draw = yield from state.nondet("sample")
        sampled = draw < 0.3
        if SamplingNF.decisions is not None:
            SamplingNF.decisions.append((id(self.marker), packet.clock, sampled))
        if sampled:
            yield from state.update("sampled", None, "incr", 1)
        return [Output(packet)]


def build(sim):
    SamplingNF.decisions = []
    chain = LogicalChain("nondet")
    chain.add_vertex("sampler", SamplingNF, entry=True)
    return ChainRuntime(sim, chain)


def run(sim, runtime, n=60, crash_at=None, results=None):
    def source():
        for index in range(n):
            runtime.inject(make_packet(sport=1000 + (index % 4)))
            yield sim.timeout(3.0)
            if crash_at is not None and index == crash_at:
                runtime.instances["sampler-0"].fail()

                def recover():
                    results["r"] = yield from fail_over_nf(runtime, "sampler-0")

                sim.process(recover())

    sim.process(source())
    sim.run(until=60_000_000)


def sampled_count(runtime):
    key = StateKey("sampler", "sampled").storage_key()
    return runtime.store.instance_for_key(key).peek(key) or 0


class TestNonDeterminism:
    def test_same_clock_same_value(self, sim):
        runtime = build(sim)
        client = runtime.instances_of("sampler")[0].client
        packet = make_packet(clock=17)

        def body():
            ctx = client.make_context(packet)
            first = yield from client.nondet("sample", ctx=ctx)
            again = yield from client.nondet("sample", ctx=ctx)
            other_ctx = client.make_context(make_packet(clock=18))
            other = yield from client.nondet("sample", ctx=other_ctx)
            return first, again, other

        first, again, other = sim.run_process(body())
        assert first == again
        assert first != other

    def test_decisions_identical_under_failover_replay(self):
        clean_sim = Simulator()
        clean = build(clean_sim)
        run(clean_sim, clean)
        clean_decisions = {
            clock: sampled for _m, clock, sampled in SamplingNF.decisions
        }
        clean_count = sampled_count(clean)

        crash_sim = Simulator()
        crashed = build(crash_sim)
        results = {}
        run(crash_sim, crashed, crash_at=20, results=results)
        assert results["r"].replayed > 0
        # every decision (original or replayed at the replacement) matches
        # the clean run's decision for that clock
        for _marker, clock, sampled in SamplingNF.decisions:
            assert clean_decisions[clock] == sampled, f"clock {clock} diverged"
        # and the sampled counter is exactly the no-failure value
        assert sampled_count(crashed) == clean_count

    def test_replayed_decision_uses_original_draw(self):
        sim = Simulator()
        runtime = build(sim)
        results = {}
        run(sim, runtime, crash_at=20, results=results)
        by_clock = {}
        for marker, clock, sampled in SamplingNF.decisions:
            by_clock.setdefault(clock, set()).add(sampled)
        # a clock processed twice (original + replay) never flips
        assert all(len(values) == 1 for values in by_clock.values())

    def test_nondet_values_pruned_with_packet(self, sim):
        runtime = build(sim)
        run(sim, runtime, n=10)
        sim.run(until=120_000_000)  # prune grace elapses
        assert runtime.stores[0]._nondet == {}
