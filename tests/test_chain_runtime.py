"""Integration tests for the chain runtime: routing, accounting, egress."""


from repro.core.chain_runtime import ChainRuntime, RuntimeParams
from repro.core.dag import LogicalChain
from repro.core.nf_api import NetworkFunction, Output
from repro.simnet.engine import Simulator
from repro.store.keys import StateKey
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from repro.traffic.trace import make_trace2
from repro.traffic.workload import ReplaySource
from tests.conftest import make_packet


class CountingNF(NetworkFunction):
    """Counts every packet in a shared counter and forwards it."""

    name = "count"

    def state_specs(self):
        return {
            "seen": StateObjectSpec(
                "seen", Scope.CROSS_FLOW, AccessPattern.WRITE_MOSTLY, (), initial_value=0
            )
        }

    def process(self, packet, state):
        yield from state.update("seen", None, "incr", 1)
        return [Output(packet)]


class DroppingNF(NetworkFunction):
    name = "dropper"

    def process(self, packet, state):
        return []
        yield


class AlertingNF(NetworkFunction):
    """Forwards traffic and raises an alert copy for SYNs."""

    name = "alerter"

    def process(self, packet, state):
        outputs = [Output(packet)]
        if packet.is_syn:
            outputs.append(Output(packet.copy(), edge="alert"))
        return outputs
        yield


def build(sim, vertices, edges, params=None, **kwargs):
    chain = LogicalChain("t")
    for index, (name, factory, parallelism) in enumerate(vertices):
        chain.add_vertex(name, factory, parallelism=parallelism, entry=index == 0)
    for edge in edges:
        chain.add_edge(*edge[:2], **(edge[2] if len(edge) > 2 else {}))
    return ChainRuntime(sim, chain, params=params, **kwargs)


class TestLinearChain:
    def test_all_packets_traverse_and_delete(self, sim):
        runtime = build(
            sim,
            [("a", CountingNF, 1), ("b", CountingNF, 1)],
            [("a", "b")],
        )
        for sport in range(30):
            runtime.inject(make_packet(sport=1000 + sport))
        sim.run()
        assert runtime.egress_meter.packets == 30
        assert runtime.root.stats.deleted == 30
        assert len(runtime.root.log) == 0
        key_a = StateKey("a", "seen").storage_key()
        key_b = StateKey("b", "seen").storage_key()
        assert runtime.store.instance_for_key(key_a).peek(key_a) == 30
        assert runtime.store.instance_for_key(key_b).peek(key_b) == 30

    def test_dropped_packets_still_deleted(self, sim):
        runtime = build(
            sim,
            [("a", CountingNF, 1), ("drop", DroppingNF, 1)],
            [("a", "drop")],
        )
        for sport in range(10):
            runtime.inject(make_packet(sport=2000 + sport))
        sim.run()
        assert runtime.egress_meter.packets == 0
        assert runtime.root.stats.deleted == 10

    def test_egress_latency_recorded(self, sim):
        runtime = build(sim, [("a", CountingNF, 1)], [])
        runtime.inject(make_packet())
        sim.run()
        assert len(runtime.egress_recorder) == 1
        assert runtime.egress_recorder.values[0] > 0


class TestFanOutAndMirrors:
    def test_mirror_copies_main_output(self, sim):
        runtime = build(
            sim,
            [("a", CountingNF, 1), ("b", CountingNF, 1), ("tap", CountingNF, 1)],
            [("a", "b"), ("a", "tap", {"mirror": True})],
        )
        for sport in range(20):
            runtime.inject(make_packet(sport=3000 + sport))
        sim.run()
        key_tap = StateKey("tap", "seen").storage_key()
        assert runtime.store.instance_for_key(key_tap).peek(key_tap) == 20
        # both the main path and the tap exit; all log entries clear
        assert runtime.root.stats.deleted == 20
        assert runtime.egress_meter.packets == 40  # b + tap are both sinks

    def test_labelled_edge_routing(self, sim):
        runtime = build(
            sim,
            [("a", AlertingNF, 1), ("main", CountingNF, 1), ("alerts", CountingNF, 1)],
            [("a", "main"), ("a", "alerts", {"label": "alert"})],
        )
        runtime.inject(make_packet(flags=0x02))  # SYN
        runtime.inject(make_packet(sport=4242))  # plain
        sim.run()
        key_main = StateKey("main", "seen").storage_key()
        key_alerts = StateKey("alerts", "seen").storage_key()
        assert runtime.store.instance_for_key(key_main).peek(key_main) == 2
        assert runtime.store.instance_for_key(key_alerts).peek(key_alerts) == 1
        assert runtime.root.stats.deleted == 2

    def test_unmatched_label_goes_to_egress(self, sim):
        runtime = build(sim, [("a", AlertingNF, 1), ("b", CountingNF, 1)], [("a", "b")])
        runtime.inject(make_packet(flags=0x02))  # SYN -> alert has no edge
        sim.run()
        assert runtime.root.stats.deleted == 1
        # the alert surfaced at egress from vertex "a"
        egress_sources = [v for v, _p in runtime.egress.items()]
        assert "a" in egress_sources


class TestParallelInstances:
    def test_flows_partitioned_across_instances(self, sim):
        runtime = build(sim, [("a", CountingNF, 3)], [])
        for sport in range(120):
            runtime.inject(make_packet(sport=5000 + sport))
        sim.run()
        processed = [i.stats.processed for i in runtime.instances_of("a")]
        assert sum(processed) == 120
        assert all(p > 0 for p in processed)
        assert runtime.root.stats.deleted == 120

    def test_flow_affinity_within_instance(self, sim):
        runtime = build(sim, [("a", CountingNF, 3)], [])
        for _ in range(10):
            runtime.inject(make_packet())  # same five-tuple every time
        sim.run()
        processed = sorted(i.stats.processed for i in runtime.instances_of("a"))
        assert processed == [0, 0, 10]


class TestDuplicateFilter:
    def test_duplicate_clock_suppressed(self, sim):
        runtime = build(sim, [("a", CountingNF, 1)], [])
        # two copies of the same in-flight packet reach the same queue
        # (what straggler/clone replication produces)
        packet = make_packet(clock=777)
        runtime._deliver("a", packet)
        runtime._deliver("a", packet.copy())
        sim.run()
        assert runtime.instances_of("a")[0].stats.processed == 1
        assert runtime.duplicates_suppressed == 1

    def test_filter_forgets_after_delete(self, sim):
        # once a packet's log entry is deleted, its clock may legitimately
        # be pruned from the filters (bounded memory)
        runtime = build(sim, [("a", CountingNF, 1)], [])
        packet = make_packet()
        runtime.inject(packet)
        sim.run()
        assert runtime.root.stats.deleted == 1
        assert all(len(f) == 0 for f in runtime.filters.values())

    def test_suppression_disabled_lets_duplicates_through(self, sim):
        params = RuntimeParams(suppress_duplicates=False)
        runtime = build(sim, [("a", CountingNF, 1)], [], params=params)
        packet = make_packet()
        runtime.inject(packet)
        sim.run()
        duplicate = packet.copy()
        runtime._deliver("a", duplicate)
        sim.run()
        assert runtime.instances_of("a")[0].stats.processed == 2
        assert runtime.instances_of("a")[0].stats.duplicates_seen == 1


class TestTraceRun:
    def test_small_trace_end_to_end(self, sim):
        runtime = build(
            sim,
            [("a", CountingNF, 2), ("b", CountingNF, 1)],
            [("a", "b")],
        )
        trace = make_trace2(scale=0.0003)
        ReplaySource(sim, trace.packets, runtime.inject, load_fraction=0.5)
        sim.run(until=60_000_000)
        assert runtime.root.stats.injected == len(trace)
        assert runtime.root.stats.deleted == len(trace)
        assert runtime.egress_meter.packets == len(trace)

    def test_deterministic_across_runs(self):
        def run_once():
            sim = Simulator()
            runtime = build(
                sim, [("a", CountingNF, 2), ("b", CountingNF, 1)], [("a", "b")]
            )
            trace = make_trace2(scale=0.0002)
            ReplaySource(sim, trace.packets, runtime.inject, load_fraction=0.5)
            sim.run(until=60_000_000)
            return (
                runtime.egress_recorder.values,
                [i.stats.processed for i in runtime.instances.values()],
            )

        assert run_once() == run_once()
