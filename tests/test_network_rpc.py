"""Unit tests for the network fabric and RPC layer."""

import pytest

from repro.simnet.network import Link, Network
from repro.simnet.rpc import RpcEndpoint, RpcTimeout


class TestLinks:
    def test_constant_latency_delivery(self, sim, network):
        inbox = network.register("dst")
        network.send("src", "dst", "hello")
        sim.run()
        assert len(inbox) == 1
        envelope = inbox.try_get()
        assert envelope.payload == "hello"
        assert sim.now == pytest.approx(14.0)

    def test_explicit_link_overrides_default(self, sim, network):
        inbox = network.register("dst")
        network.connect("src", "dst", Link(latency_us=2.0))
        network.send("src", "dst", "fast")
        sim.run()
        assert sim.now == pytest.approx(2.0)
        assert len(inbox) == 1

    def test_lossy_link_drops(self, sim):
        network = Network(sim, Link(latency_us=1.0, loss=1.0), seed=1)
        network.register("dst")
        for _ in range(10):
            network.send("src", "dst", "x")
        sim.run()
        assert network.dropped == 10
        assert network.delivered == 0

    def test_jitter_can_reorder(self, sim):
        network = Network(sim, Link(latency_us=1.0, jitter_us=50.0), seed=3)
        received = []
        network.register_callback("dst", lambda env: received.append(env.payload))
        for i in range(30):
            sim.schedule(i * 0.01, network.send, "src", "dst", i)
        sim.run()
        assert sorted(received) == list(range(30))
        assert received != list(range(30))  # jitter reordered something

    def test_down_endpoint_drops(self, sim, network):
        network.register("dst")
        network.set_down("dst")
        network.send("src", "dst", "x")
        sim.run()
        assert network.dropped == 1

    def test_unknown_endpoint_drops(self, sim, network):
        network.send("src", "ghost", "x")
        sim.run()
        assert network.dropped == 1

    def test_duplicate_registration_rejected(self, sim, network):
        network.register("dup")
        with pytest.raises(ValueError):
            network.register("dup")

    def test_reregistration_after_unregister_clears_down(self, sim, network):
        network.register("node")
        network.set_down("node")
        network.unregister("node")
        inbox = network.register("node")
        network.send("src", "node", "back")
        sim.run()
        assert len(inbox) == 1


class TestRpc:
    def _echo_server(self, sim, endpoint):
        def loop():
            while True:
                request = yield endpoint.requests.get()
                endpoint.respond(request, ("echo", request.payload))

        sim.process(loop())

    def test_call_roundtrip(self, sim, network):
        server = RpcEndpoint(sim, network, "server")
        client = RpcEndpoint(sim, network, "client")
        self._echo_server(sim, server)

        def body():
            value = yield client.call_event("server", "ping")
            return (sim.now, value)

        at, value = sim.run_process(body())
        assert value == ("echo", "ping")
        assert at == pytest.approx(28.0)  # one RTT over the 14µs default link

    def test_oneway_message(self, sim, network):
        server = RpcEndpoint(sim, network, "server")
        client = RpcEndpoint(sim, network, "client")
        client.send("server", {"kind": "notify"})
        sim.run()
        assert len(server.messages) == 1
        envelope = server.messages.try_get()
        assert envelope.payload == {"kind": "notify"}  # unwrapped payload
        assert envelope.src == "client"

    def test_call_with_retransmission_succeeds_on_lossy_link(self, sim):
        network = Network(sim, Link(latency_us=1.0), seed=5)
        network.connect("client", "server", Link(latency_us=1.0, loss=0.6))
        server = RpcEndpoint(sim, network, "server")
        client = RpcEndpoint(sim, network, "client")
        self._echo_server(sim, server)

        def body():
            value = yield from client.call("server", "data", timeout_us=10.0, max_retries=50)
            return value

        assert sim.run_process(body()) == ("echo", "data")

    def test_call_timeout_raises(self, sim, network):
        RpcEndpoint(sim, network, "server")  # never answers
        client = RpcEndpoint(sim, network, "client")

        def body():
            yield from client.call("server", "x", timeout_us=5.0, max_retries=2)

        proc = sim.process(body())
        sim.run()
        assert not proc.ok
        assert isinstance(proc.value, RpcTimeout)

    def test_failed_endpoint_goes_dark(self, sim, network):
        server = RpcEndpoint(sim, network, "server")
        client = RpcEndpoint(sim, network, "client")
        self._echo_server(sim, server)
        server.fail()
        waiter = client.call_event("server", "ping")
        sim.run()
        assert not waiter.triggered

    def test_concurrent_calls_matched_by_id(self, sim, network):
        server = RpcEndpoint(sim, network, "server")
        client = RpcEndpoint(sim, network, "client")

        def slow_server():
            while True:
                request = yield server.requests.get()
                delay = 10.0 if request.payload == "slow" else 1.0

                def respond_later(req=request, d=delay):
                    def body():
                        yield sim.timeout(d)
                        server.respond(req, req.payload.upper())

                    sim.process(body())

                respond_later()

        sim.process(slow_server())

        def body():
            slow = client.call_event("server", "slow")
            fast = client.call_event("server", "fast")
            values = yield sim.all_of([slow, fast])
            return values

        assert sim.run_process(body()) == ["SLOW", "FAST"]
