"""Replay-storm throttling (PR-6 satellite).

Recovery replay used to ride the NIC ``never_drop`` exemption: every
replayed copy was force-enqueued past the ring bound, so a
correlated-failure replay burst could grow entry rings without limit and
starve live traffic. Now bulk replayed traffic flows through the same
bounded queues as live packets — the root parks between copies until the
entry ring has space (``Root.replay`` + ``ChainRuntime._entry_hop_wait``)
— and only genuine control items (markers, the replay-end barrier) keep
the exemption.
"""

from repro.core.chain_runtime import ChainRuntime, RuntimeParams, _is_control_item
from repro.core.dag import LogicalChain
from repro.simnet.engine import Simulator
from tests.conftest import make_packet
from tests.test_cloning import SinkCounterNF, SlowCounterNF

RING = 4


def build(sim, **overrides):
    chain = LogicalChain("storm")
    chain.add_vertex("slow", SlowCounterNF, entry=True)
    chain.add_vertex("sink", SinkCounterNF)
    chain.add_edge("slow", "sink")
    params = RuntimeParams(nic_queue_limit=RING, **overrides)
    return ChainRuntime(sim, chain, params=params)


class TestNeverDropPredicate:
    def test_bulk_replayed_packets_are_droppable(self):
        packet = make_packet(replayed=True)
        assert not _is_control_item(packet)

    def test_replay_end_barrier_keeps_exemption(self):
        packet = make_packet(replayed=True, replay_end=True)
        assert _is_control_item(packet)

    def test_handover_markers_keep_exemption(self):
        assert _is_control_item(make_packet(mark_first=True))


class TestReplayStormThrottle:
    N = 40

    def _storm(self, pace_us=0.0):
        """Replay a 40-entry log at full blast (the correlated-failure
        shape: the whole window replays at once, far faster than the
        chain drains)."""
        sim = Simulator()
        runtime = build(sim)
        root = runtime.roots[0]
        snapshot = {}
        for index in range(self.N):
            clock = root.clock.next()
            snapshot[f"log\x1f{clock}"] = make_packet(
                sport=1000 + index, clock=clock
            )
        assert root.restore_log(snapshot) == self.N

        replayed = {}

        def storm():
            replayed["clocks"] = yield from root.replay(
                "slow-0", pace_us=pace_us, mark_end=False
            )

        sim.process(storm())
        sim.run(until=30_000_000)
        return runtime, root, replayed

    def test_entry_ring_stays_bounded_during_storm(self):
        runtime, root, replayed = self._storm()
        assert replayed["clocks"], "storm replayed nothing — harness broken"
        assert root.stats.replayed == len(replayed["clocks"])
        # the regression this guards: force-puts pushed the ring far past
        # its bound; with throttling the peak respects the configured limit
        # (+1 headroom for a copy admitted while the drain is mid-packet)
        peak = runtime.nics["slow-0"].txq_depth_peak
        assert peak <= RING + 1, f"entry ring peak {peak} > bound {RING}"

    def test_throttled_storm_loses_nothing(self):
        runtime, root, replayed = self._storm()
        # throttled replay waits for space instead of dropping: every
        # replayed copy is admitted and makes it through the chain
        assert runtime.nics["slow-0"].drops == 0
        assert runtime.egress_meter.packets == self.N

    def test_storm_respects_pacing_and_bound_together(self):
        runtime, root, replayed = self._storm(pace_us=0.2)
        assert replayed["clocks"]
        assert runtime.nics["slow-0"].txq_depth_peak <= RING + 1
