"""Unit tests for logical clocks and XOR bit-vector tags."""

import pytest

from repro.core.bitvector import TagRegistry, decode_tag, encode_tag
from repro.core.clock import (
    LogicalClock,
    MAX_ROOT_ID,
    clock_root,
    clock_sequence,
    make_clock,
)


class TestClockEncoding:
    def test_roundtrip(self):
        clock = make_clock(5, 123456)
        assert clock_root(clock) == 5
        assert clock_sequence(clock) == 123456

    def test_root_id_in_high_bits_orders_after_low_roots_sequences(self):
        # clocks from different roots are disjoint ranges
        assert make_clock(1, 1) > make_clock(0, 2**40)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            make_clock(MAX_ROOT_ID + 1, 0)
        with pytest.raises(ValueError):
            make_clock(0, -1)

    def test_clock_source_monotonic(self):
        clock = LogicalClock(root_id=2)
        values = [clock.next() for _ in range(100)]
        assert values == sorted(values)
        assert len(set(values)) == 100
        assert all(clock_root(v) == 2 for v in values)

    def test_resume_skips_unpersisted_window(self):
        original = LogicalClock(root_id=0)
        for _ in range(137):
            original.next()
        persisted = 100  # last persisted multiple
        resumed = LogicalClock.resume_from(0, persisted, persist_every=100)
        next_clock = resumed.next()
        # even though 137 clocks were issued, resuming from 100+100+1 can
        # never reuse a value
        assert clock_sequence(next_clock) > 137


class TestTags:
    def test_encode_decode(self):
        tag = encode_tag(3, 9)
        assert decode_tag(tag) == (3, 9)

    def test_bounds(self):
        with pytest.raises(ValueError):
            encode_tag(1 << 16, 0)
        with pytest.raises(ValueError):
            encode_tag(0, 1 << 16)

    def test_registry_stable_and_distinct(self):
        registry = TagRegistry()
        nat_ports = registry.tag("nat", "ports")
        nat_counter = registry.tag("nat", "counter")
        lb_counter = registry.tag("lb", "counter")
        assert nat_ports != nat_counter
        assert nat_counter != lb_counter
        assert registry.tag("nat", "ports") == nat_ports  # stable

    def test_registry_deterministic_across_builds(self):
        def build():
            registry = TagRegistry()
            return registry.tags_for("nat", ["a", "b", "c"])

        assert build() == build()

    def test_xor_of_pair_cancels(self):
        registry = TagRegistry()
        tag = registry.tag("v", "obj")
        assert tag ^ tag == 0
