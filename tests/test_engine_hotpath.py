"""Regression tests for the engine hot-path overhaul.

Covers the semantics the deque/microtask rewrite must preserve:

* :class:`Channel` FIFO behaviour under concurrent getters, ``put_front``,
  ``remove_if`` with parked getters, and ``clear`` with a parked getter;
* deterministic event ordering — the microtask fast-path must produce the
  *bit-for-bit identical* execution order of a heap-only engine, proven
  against a reference implementation embedded in this file;
* RPC waiter hygiene — a timed-out call's stale waiter leaves ``_pending``
  and a lost race's :class:`AnyOf` detaches from the losing events;
* the hot-path counters surfaced through :mod:`repro.simnet.monitor`.
"""

from __future__ import annotations

import heapq

import pytest

from repro.simnet.engine import AnyOf, Channel, Event, SimulationError
from repro.simnet.monitor import channel_depth_peaks, engine_counters
from repro.simnet.network import Link, Network
from repro.simnet.rpc import RpcEndpoint, RpcTimeout


# ---------------------------------------------------------------------------
# Channel semantics after the deque swap
# ---------------------------------------------------------------------------


class TestChannelSemantics:
    def test_fifo_order_with_concurrent_getters(self, sim):
        """Parked getters are served strictly in arrival order."""
        channel = Channel(sim, name="c")
        got = []

        def getter(k):
            value = yield channel.get()
            got.append((k, value))

        for k in range(5):
            sim.process(getter(k))

        def feeder():
            yield sim.timeout(1.0)
            for i in range(5):
                channel.put(i)

        sim.process(feeder())
        sim.run()
        # getter k (registered k-th) receives item k (put k-th)
        assert got == [(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]

    def test_fifo_order_interleaved_put_get(self, sim):
        channel = Channel(sim, name="c")
        channel.put("a")
        channel.put("b")
        first = channel.get()
        second = channel.get()
        third = channel.get()  # parks: queue empty
        channel.put("c")
        sim.run()
        assert (first.value, second.value, third.value) == ("a", "b", "c")

    def test_put_front_jumps_the_queue(self, sim):
        channel = Channel(sim, name="c")
        channel.put(1)
        channel.put(2)
        channel.put_front(0)
        assert [channel.try_get() for _ in range(3)] == [0, 1, 2]

    def test_put_front_wakes_parked_getter(self, sim):
        channel = Channel(sim, name="c")
        event = channel.get()  # parks
        channel.put_front("urgent")
        sim.run()
        assert event.value == "urgent"

    def test_remove_if_with_waiting_getters(self, sim):
        """Deleting queued items must not disturb parked getters: the next
        put still reaches the oldest waiting getter (the §5.3 duplicate
        filter deletes packets out of framework queues in place)."""
        channel = Channel(sim, name="c")
        first = channel.get()
        second = channel.get()
        assert channel.remove_if(lambda item: True) == 0  # nothing queued
        channel.put("x")
        channel.put("y")
        sim.run()
        assert (first.value, second.value) == ("x", "y")

    def test_remove_if_filters_queued_items(self, sim):
        channel = Channel(sim, name="c")
        for i in range(6):
            channel.put(i)
        removed = channel.remove_if(lambda item: item % 2 == 0)
        assert removed == 3
        assert channel.items() == [1, 3, 5]
        assert len(channel) == 3

    def test_clear_with_parked_getter(self, sim):
        """clear() empties queued items but leaves parked getters wired."""
        channel = Channel(sim, name="c")
        event = channel.get()  # parks
        assert channel.clear() == 0
        channel.put("after-clear")
        sim.run()
        assert event.value == "after-clear"
        # and clearing actual items reports the count
        channel.put(1)
        channel.put(2)
        assert channel.clear() == 2
        assert len(channel) == 0

    def test_depth_peak_tracks_high_water_mark(self, sim):
        channel = Channel(sim, name="c")
        for i in range(7):
            channel.put(i)
        for _ in range(7):
            channel.try_get()
        channel.put(99)
        assert channel.depth_peak == 7


# ---------------------------------------------------------------------------
# determinism: microtask fast-path vs a reference heap-only engine
# ---------------------------------------------------------------------------


class ReferenceSimulator:
    """The seed engine's scheduling semantics, minimally: one heap keyed by
    ``(time, seq)``, zero-delay callbacks included. The production engine
    must replay the exact same callback order."""

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = 0

    def schedule(self, delay, callback, *args):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback, args))
        self._seq += 1

    def run(self):
        while self._heap:
            time, _seq, callback, args = heapq.heappop(self._heap)
            self.now = time
            callback(*args)


def _ordering_workload(sim, trace):
    """A scheduling pattern that interleaves zero-delay and delayed work at
    shared instants — every case where heap/microtask order could diverge:
    zero-delay after a delayed entry due *now*, nested cascades, ties."""

    def emit(tag):
        trace.append((sim.now, tag))

    def cascade(tag, depth):
        emit(tag)
        if depth:
            sim.schedule(0.0, cascade, f"{tag}>", depth - 1)

    sim.schedule(5.0, emit, "t5-a")
    sim.schedule(0.0, cascade, "z0", 3)
    sim.schedule(5.0, cascade, "t5-b", 2)
    sim.schedule(2.0, emit, "t2")
    sim.schedule(0.0, emit, "z1")

    def at_t2_mixer():
        emit("t2-mixer")
        sim.schedule(0.0, emit, "t2-z")
        sim.schedule(3.0, emit, "t5-late")  # lands at t=5, after t5-a/b
        sim.schedule(0.0, cascade, "t2-casc", 2)

    sim.schedule(2.0, at_t2_mixer)
    # two entries for the same future instant scheduled from different times
    sim.schedule(7.0, emit, "t7-a")


def test_microtask_order_matches_reference_heap_engine(sim):
    reference = ReferenceSimulator()
    expected = []
    _ordering_workload(reference, expected)
    reference.run()

    actual = []
    _ordering_workload(sim, actual)
    sim.run()

    assert actual == expected
    assert len(actual) > 10  # the workload actually exercised something


def test_microtask_order_matches_reference_on_random_schedules(sim):
    """Randomised (but seeded) schedule mixes replay identically."""
    import random

    rng = random.Random(1234)
    plan = [(rng.choice([0.0, 0.0, 1.0, 2.5]), k) for k in range(200)]

    def load(s, trace):
        def emit(tag):
            trace.append((s.now, tag))
            # every third callback schedules follow-up work, half of it
            # zero-delay, from *inside* the run loop
            if tag % 3 == 0:
                s.schedule(0.0, emit, tag + 1000)
            if tag % 7 == 0:
                s.schedule(1.5, emit, tag + 2000)

        for delay, tag in plan:
            s.schedule(delay, emit, tag)

    reference = ReferenceSimulator()
    expected = []
    load(reference, expected)
    reference.run()

    actual = []
    load(sim, actual)
    sim.run()

    assert actual == expected


def test_zero_delay_preserves_scheduling_order_with_due_heap_entry(sim):
    """A heap entry due at `now` with a smaller seq runs before a microtask
    enqueued after it — the documented (time, seq) tie-break."""
    trace = []

    def outer():
        sim.schedule(1.0, trace.append, "heap-first")  # seq N (due at t=1)

    sim.schedule(0.0, outer)
    sim.run(until=0.5)
    # at t=1 the heap entry exists; schedule a microtask *after* advancing
    sim.schedule(0.5, lambda: sim.schedule(0.0, trace.append, "micro-second"))
    sim.run()
    assert trace == ["heap-first", "micro-second"]


def test_negative_delay_rejected_and_seq_not_burned(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)
    trace = []
    sim.schedule(0.0, trace.append, "a")
    sim.schedule(0.0, trace.append, "b")
    sim.run()
    assert trace == ["a", "b"]


# ---------------------------------------------------------------------------
# RPC waiter hygiene
# ---------------------------------------------------------------------------


@pytest.fixture
def rpc_pair(sim):
    network = Network(sim, Link(latency_us=10.0), seed=3)
    client = RpcEndpoint(sim, network, "client")
    server = RpcEndpoint(sim, network, "server")
    return client, server


class TestRpcWaiterHygiene:
    def test_timeout_removes_stale_waiter_from_pending(self, sim, rpc_pair):
        client, server = rpc_pair
        # server never answers
        with pytest.raises(RpcTimeout):
            sim.run_process(
                client.call("server", "ping", timeout_us=5.0, max_retries=2)
            )
        assert client._pending == {}

    def test_timeout_then_retry_succeeds_and_cleans_up(self, sim, rpc_pair):
        client, server = rpc_pair
        answered = []

        def serve():
            while True:
                request = yield server.requests.get()
                answered.append(request.request_id)
                if len(answered) >= 2:  # drop the first attempt
                    server.respond(request, "pong")

        sim.process(serve())

        value = sim.run_process(
            client.call("server", "ping", timeout_us=50.0, max_retries=3)
        )
        assert value == "pong"
        assert client._pending == {}

    def test_late_response_for_timed_out_id_is_discarded(self, sim, rpc_pair):
        client, server = rpc_pair

        def serve():
            while True:
                request = yield server.requests.get()
                # answer only after the client's timeout fired
                yield sim.timeout(40.0)
                server.respond(request, f"late-{request.request_id}")

        sim.process(serve())
        with pytest.raises(RpcTimeout):
            sim.run_process(client.call("server", "ping", timeout_us=5.0))
        sim.run()  # deliver the late response; must be a no-op
        assert client._pending == {}

    def test_anyof_detaches_from_losing_events(self, sim):
        winner = Event(sim, name="winner")
        loser = Event(sim, name="loser")
        race = AnyOf(sim, [winner, loser])
        winner.succeed("won")
        sim.run()
        assert race.value == (winner, "won")
        # the loser no longer references the AnyOf: its callback list is
        # empty, so triggering it later delivers to nobody
        assert not loser.callbacks
        loser.succeed("too-late")
        sim.run()
        assert race.value == (winner, "won")

    def test_anyof_failed_child_fails_the_race(self, sim):
        a = Event(sim, name="a")
        b = Event(sim, name="b")
        race = AnyOf(sim, [a, b])
        a.fail(RuntimeError("boom"))
        sim.run()
        assert race.triggered and not race.ok
        assert not b.callbacks


# ---------------------------------------------------------------------------
# engine counters / monitor surface
# ---------------------------------------------------------------------------


class TestEngineCounters:
    def test_counters_split_heap_and_microtasks(self, sim):
        for _ in range(4):
            sim.schedule(0.0, lambda: None)
        for i in range(3):
            sim.schedule(1.0 + i, lambda: None)
        sim.run()
        snapshot = engine_counters(sim)
        assert snapshot.events_processed == 7
        assert snapshot.microtasks_processed == 4
        assert snapshot.heap_events == 3
        assert snapshot.heap_peak == 3
        assert snapshot.heap_size == 0
        assert snapshot.microtask_share == pytest.approx(4 / 7)
        payload = snapshot.as_dict()
        assert payload["events_processed"] == 7
        assert payload["microtask_share"] == pytest.approx(4 / 7, abs=1e-4)

    def test_heap_peak_counts_concurrent_timers(self, sim):
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.heap_peak == 10
        sim.run()
        assert sim.heap_peak == 10  # peak is sticky after drain

    def test_channel_depth_peaks_omits_idle_channels(self, sim):
        busy = Channel(sim, name="busy")
        idle = Channel(sim, name="idle")
        for i in range(5):
            busy.put(i)
        peaks = channel_depth_peaks({"busy": busy, "idle": idle})
        assert peaks == {"busy": 5}

    def test_event_callback_delivery_uses_microtasks(self, sim):
        event = Event(sim, name="e")
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed(1)
        sim.run()
        assert seen == [1]
        assert sim.microtasks_processed >= 1
