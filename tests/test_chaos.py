"""Chaos campaign framework: faults, detection, supervision, invariants.

Three layers of coverage:

* **fabric faults** — partitions, time-windowed degradation, and drop
  accounting by cause on :class:`~repro.simnet.network.Network`;
* **injection and detection** — ``fail_at(now)``, idempotent ``fail_now``,
  the heartbeat :class:`~repro.chaos.director.DetectionModel`, seeded
  random schedules, and bounded RPC retransmission (``RpcGaveUp``);
* **end-to-end scenarios** — every named scenario in
  :data:`repro.chaos.SCENARIOS` runs under a
  :class:`~repro.core.supervisor.Supervisor` and must satisfy the full
  invariant battery; a deliberately broken recovery protocol must be
  *caught* by the checkers (the regression that proves the checkers have
  teeth).
"""

import random

import pytest

from repro.chaos import (
    SCENARIOS,
    ChaosDirector,
    CrashStore,
    DetectionModel,
    LinkLossBurst,
    Schedule,
    ScenarioSpec,
    check_invariants,
    random_schedule,
    run_scenario,
)
from repro.chaos.campaign import _reference_run
from repro.simnet.engine import Simulator
from repro.simnet.failures import FailureInjector
from repro.simnet.network import Link, Network
from repro.simnet.rpc import RpcEndpoint, RpcGaveUp


# ----------------------------------------------------------------------
# fabric faults
# ----------------------------------------------------------------------


class TestPartition:
    def test_cross_group_messages_dropped(self, sim, network):
        a = network.register("a")
        b = network.register("b")
        network.partition([["a"], ["b"]])
        network.send("a", "b", "x")
        sim.run()
        assert len(b) == 0
        assert network.drops["partition"] == 1
        assert network.dropped == 1
        assert len(a) == 0

    def test_same_group_and_unlisted_flow_freely(self, sim, network):
        network.register("a1")
        a2 = network.register("a2")
        b = network.register("b")
        free = network.register("free")
        network.partition([["a1", "a2"], ["b"]])
        network.send("a1", "a2", "intra")
        network.send("a1", "free", "to-unlisted")
        network.send("free", "b", "from-unlisted")
        sim.run()
        assert len(a2) == 1 and len(free) == 1 and len(b) == 1
        assert network.drops["partition"] == 0

    def test_heal_restores_delivery(self, sim, network):
        b = network.register("b")
        network.register("a")
        network.partition([["a"], ["b"]])
        assert network.partitioned
        network.heal()
        assert not network.partitioned
        network.send("a", "b", "x")
        sim.run()
        assert len(b) == 1


class TestDegradation:
    def test_loss_burst_is_time_windowed(self, sim, network):
        inbox = network.register("dst")
        network.degrade(loss=1.0, duration_us=100.0)
        for _ in range(5):
            network.send("src", "dst", "in-window")
        sim.run()
        assert network.drops["loss"] == 5 and len(inbox) == 0
        # past the window the same traffic flows again (lazy pruning)
        sim.schedule(200.0, lambda: None)
        sim.run()
        for _ in range(5):
            network.send("src", "dst", "after")
        sim.run()
        assert len(inbox) == 5

    def test_latency_spike_delays_matching_traffic(self, sim, network):
        network.register("dst")
        network.degrade(src="slow", extra_latency_us=100.0)
        network.send("slow", "dst", "delayed")
        sim.run()
        assert sim.now == pytest.approx(114.0)  # 14 base + 100 spike

    def test_degradation_src_filter(self, sim, network):
        inbox = network.register("dst")
        network.degrade(src="noisy", loss=1.0)
        network.send("clean", "dst", "ok")
        network.send("noisy", "dst", "lost")
        sim.run()
        assert len(inbox) == 1
        assert network.drops["loss"] == 1

    def test_remove_degradation(self, sim, network):
        inbox = network.register("dst")
        degradation = network.degrade(loss=1.0)
        network.remove_degradation(degradation)
        network.send("src", "dst", "x")
        sim.run()
        assert len(inbox) == 1

    def test_loss_composes_with_link_loss(self, sim):
        network = Network(sim, Link(latency_us=1.0, loss=0.5), seed=11)
        network.register("dst")
        network.degrade(loss=0.5)  # composed: 1 - 0.5*0.5 = 75% drop
        n = 2000
        for _ in range(n):
            network.send("src", "dst", "x")
        sim.run()
        assert network.drops["loss"] / n == pytest.approx(0.75, abs=0.05)


class TestDropAccounting:
    def test_each_cause_attributed(self, sim):
        network = Network(sim, Link(latency_us=1.0), seed=2)
        network.register("down")
        network.set_down("down")
        network.register("a")
        network.register("b")

        network.send("src", "ghost", "x")  # unregistered
        network.send("src", "down", "x")  # endpoint down
        network.partition([["a"], ["b"]])
        network.send("a", "b", "x")  # partition
        network.heal()
        network.degrade(loss=1.0, duration_us=10.0)
        network.send("a", "b", "x")  # loss
        sim.run()
        assert network.drops == {
            "loss": 1,
            "endpoint_down": 1,
            "unregistered": 1,
            "partition": 1,
        }
        assert network.dropped == 4


# ----------------------------------------------------------------------
# injection, detection, schedules, RPC hardening
# ----------------------------------------------------------------------


class _Crashable:
    def __init__(self):
        self.alive = True

    def fail(self):
        self.alive = False


class TestFailureInjector:
    def test_fail_at_current_instant(self, sim):
        injector = FailureInjector(sim)
        target = _Crashable()
        sim.schedule(10.0, lambda: injector.fail_at(sim.now, target))
        sim.run()
        assert not target.alive
        assert injector.failed == [target]

    def test_fail_at_past_rejected(self, sim):
        injector = FailureInjector(sim)
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            injector.fail_at(5.0, _Crashable())

    def test_fail_now_idempotent(self, sim):
        injector = FailureInjector(sim)
        notified = []
        injector.on_failure(notified.append)
        target = _Crashable()
        injector.fail_now(target)
        injector.fail_now(target)
        assert notified == [target]
        assert injector.failed == [target]

    def test_out_of_band_death_not_renotified(self, sim):
        injector = FailureInjector(sim)
        notified = []
        injector.on_failure(notified.append)
        target = _Crashable()
        target.fail()  # died outside the injector
        injector.fail_now(target)
        assert notified == []
        assert injector.failed == [target]


class TestDetectionModel:
    def test_instantaneous_by_default(self):
        rng = random.Random(0)
        assert DetectionModel().latency_us(rng) == 0.0
        assert DetectionModel(heartbeat_interval_us=0.0).latency_us(rng) == 0.0

    def test_heartbeat_latency_bounds(self):
        rng = random.Random(3)
        model = DetectionModel(heartbeat_interval_us=50.0, misses=2)
        for _ in range(100):
            latency = model.latency_us(rng)
            assert 50.0 <= latency < 100.0

    def test_detection_delays_supervisor_notification(self, sim):
        director = ChaosDirector(
            sim, detection=DetectionModel(heartbeat_interval_us=40.0), seed=5
        )
        seen_at = []
        director.on_failure(lambda c: seen_at.append(sim.now))
        target = _Crashable()
        target.name = "t"
        director.fail_at(10.0, target)
        sim.run()
        assert not target.alive  # the crash itself is immediate
        assert len(seen_at) == 1 and seen_at[0] > 10.0
        assert director.failed_at["t"] == 10.0
        assert director.detected_at["t"] == seen_at[0]


class TestRandomSchedule:
    def test_same_seed_same_schedule(self):
        a = random_schedule(42, (100.0, 5_000.0), n_faults=4)
        b = random_schedule(42, (100.0, 5_000.0), n_faults=4)
        assert a.actions == b.actions

    def test_different_seeds_differ(self):
        schedules = {
            repr(random_schedule(seed, (100.0, 5_000.0), n_faults=4).actions)
            for seed in range(8)
        }
        assert len(schedules) > 1

    def test_max_crashes_bounds_pileups(self):
        schedule = random_schedule(
            7, (0.0, 1_000.0), n_faults=12, crash_weight=1.0, max_crashes=2
        )
        assert schedule.crash_count <= 2

    def test_actions_inside_window(self):
        schedule = random_schedule(9, (200.0, 300.0), n_faults=6)
        assert all(200.0 <= action.at_us <= 300.0 for action in schedule.actions)


class TestRpcHardening:
    def _echo_server(self, sim, endpoint):
        def loop():
            while True:
                request = yield endpoint.requests.get()
                endpoint.respond(request, ("echo", request.payload))

        sim.process(loop(), name=f"echo({endpoint.name})")

    def test_retransmission_survives_heavy_loss(self, sim):
        network = Network(sim, Link(latency_us=2.0, loss=0.6), seed=13)
        client = RpcEndpoint(sim, network, "client")
        server = RpcEndpoint(sim, network, "server")
        self._echo_server(sim, server)
        results = []

        def caller():
            value = yield from client.call(
                "server", "ping", timeout_us=20.0, max_retries=10
            )
            results.append(value)

        sim.process(caller())
        sim.run()
        assert results == [("echo", "ping")]
        assert network.rpc_retries > 0

    def test_gave_up_after_budget(self, sim):
        network = Network(sim, Link(latency_us=2.0), seed=13)
        client = RpcEndpoint(sim, network, "client")
        outcome = []

        def caller():
            try:
                yield from client.call("ghost", "ping", timeout_us=10.0, max_retries=3)
            except RpcGaveUp as exc:
                outcome.append(exc)

        sim.process(caller())
        sim.run()
        assert len(outcome) == 1
        assert network.rpc_gaveups == 1
        assert network.rpc_timeouts == 4  # initial attempt + 3 retries

    def test_callable_dst_reresolved_per_attempt(self, sim):
        network = Network(sim, Link(latency_us=2.0), seed=13)
        client = RpcEndpoint(sim, network, "client")
        replacement = RpcEndpoint(sim, network, "server-r1")
        self._echo_server(sim, replacement)
        routing = {"server": "server-r0"}  # dead address at first
        results = []

        def swap():
            yield sim.timeout(25.0)
            routing["server"] = "server-r1"

        def caller():
            value = yield from client.call(
                lambda: routing["server"], "ping", timeout_us=20.0, max_retries=5
            )
            results.append(value)

        sim.process(swap())
        sim.process(caller())
        sim.run()
        assert results == [("echo", "ping")]

    def test_backoff_is_deterministic_per_seed(self):
        def timeout_instants(seed):
            sim = Simulator()
            network = Network(sim, Link(latency_us=2.0), seed=seed)
            client = RpcEndpoint(sim, network, "client")
            instants = []

            def caller():
                try:
                    yield from client.call(
                        "ghost", "ping", timeout_us=10.0, max_retries=4
                    )
                except RpcGaveUp:
                    instants.append(sim.now)

            sim.process(caller())
            sim.run()
            return instants

        assert timeout_instants(1) == timeout_instants(1)
        assert timeout_instants(1) != timeout_instants(2)


# ----------------------------------------------------------------------
# end-to-end scenarios under supervision
# ----------------------------------------------------------------------

_REFERENCES = {}


def _run(spec, seed, detection=None):
    """run_scenario with a per-config reference cache (keeps tests fast)."""
    key = repr(sorted(spec.runtime_overrides.items()))
    if key not in _REFERENCES:
        _REFERENCES[key] = _reference_run(seed, spec)
    return run_scenario(spec, seed, detection=detection, reference=_REFERENCES[key])


class TestScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_holds_invariants(self, name):
        outcome = _run(SCENARIOS[name], seed=1)
        assert outcome.ok, [v.as_dict() for v in outcome.violations]
        if SCENARIOS[name].build_schedule(1).crash_count:
            assert outcome.recovery_us  # something actually failed over

    def test_heartbeat_detection_correlated_crash(self):
        # staggered detection of a correlated NF+root crash: the supervisor
        # must discover the dead root before running NF failover
        outcome = _run(
            SCENARIOS["nf-plus-root"],
            seed=1,
            detection=DetectionModel(heartbeat_interval_us=50.0, misses=2),
        )
        assert outcome.ok, [v.as_dict() for v in outcome.violations]
        kinds = [e["kind"] for e in outcome.timeline]
        assert kinds.count("recovered") == 2

    def test_timeline_ordering_and_detection_split(self):
        outcome = _run(
            SCENARIOS["nf-crash"],
            seed=3,
            detection=DetectionModel(heartbeat_interval_us=30.0),
        )
        assert outcome.ok, [v.as_dict() for v in outcome.violations]
        events = {e["kind"]: e["at_us"] for e in outcome.timeline}
        assert (
            events["failed"]
            < events["detected"]
            <= events["recovery_started"]
            <= events["recovered"]
        )
        component = next(iter(outcome.recovery_us))
        # protocol time excludes detection latency, recovery time includes it
        assert outcome.protocol_us[component] < outcome.recovery_us[component]

    def test_store_recovery_over_lossy_fabric(self):
        # recover_store_instance must make progress over a 5% lossy fabric
        # (the companion NF case is the "lossy-link" scenario above)
        spec = ScenarioSpec(
            name="lossy-store-crash",
            description="5% control-plane loss + a store crash",
            build_schedule=lambda _seed: Schedule(
                [
                    LinkLossBurst(at_us=0.0, loss=0.05, duration_us=None),
                    CrashStore(at_us=150.0, name="store0"),
                ]
            ),
            expect_log_drained=False,
        )
        outcome = _run(spec, seed=2)
        assert outcome.ok, [v.as_dict() for v in outcome.violations]
        assert outcome.recovery_us


class TestBrokenRecoveryCaught:
    def test_invariant_checkers_flag_noop_nf_failover(self):
        """A recovery protocol that silently does nothing must be caught."""
        from repro.chaos.campaign import (
            HORIZON_US,
            build_runtime,
            inject_workload,
        )
        from repro.simnet.monitor import RecoveryTimeline

        spec = SCENARIOS["nf-crash"]
        reference = _REFERENCES.setdefault("[]", _reference_run(1, spec))

        def broken_nf_failover(runtime, component):
            return None
            yield  # pragma: no cover - makes this a generator

        sim = Simulator()
        runtime = build_runtime(sim, 1)
        timeline = RecoveryTimeline()
        director = ChaosDirector(
            sim, network=runtime.network, seed=1, timeline=timeline
        )
        supervisor = runtime.attach_supervisor(
            director,
            timeline=timeline,
            recovery_overrides={"nf": broken_nf_failover},
        )
        director.execute(spec.build_schedule(1), runtime)
        inject_workload(sim, runtime)
        sim.run(until=HORIZON_US)

        violations = check_invariants(
            runtime, reference=reference, supervisor=supervisor
        )
        flagged = {violation.invariant for violation in violations}
        # the crashed instance's packets never reached the sink and its
        # state was never replayed -> the loss/completeness checkers fire
        assert flagged & {"loss-free-state", "egress-complete", "log-drained"}
