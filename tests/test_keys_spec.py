"""Unit tests for state keys and the Table 1 strategy matrix."""


from repro.store.keys import StateKey, parse_storage_key
from repro.store.spec import AccessPattern, CacheStrategy, Scope, StateObjectSpec


class TestStateKey:
    def test_roundtrip(self):
        key = StateKey("nat", "port_map", ("10.0.0.1", "52.0.0.1", 1, 2, 6))
        vertex, obj, flow = parse_storage_key(key.storage_key())
        assert vertex == "nat"
        assert obj == "port_map"
        assert "10.0.0.1" in flow

    def test_shared_key_has_no_flow(self):
        key = StateKey("nat", "total_packets")
        assert key.storage_key().endswith("\x1f")

    def test_vertex_isolates_same_object_names(self):
        # "When two logical vertices use the same key to store their
        # state, vertex ID prevents any conflicts" (§4.3).
        a = StateKey("nat", "counter", ("x",))
        b = StateKey("lb", "counter", ("x",))
        assert a.storage_key() != b.storage_key()

    def test_object_id_ignores_flow(self):
        a = StateKey("nat", "port_map", ("flow1",))
        b = StateKey("nat", "port_map", ("flow2",))
        assert a.object_id() == b.object_id()

    def test_str_is_readable(self):
        assert str(StateKey("nat", "port_map", (1, 2))) == "nat/port_map/1|2"


class TestStrategyMatrix:
    """Table 1: (scope, access pattern) -> management strategy."""

    def _spec(self, scope, access, fields=("src_ip",)):
        return StateObjectSpec("obj", scope, access, fields)

    def test_write_mostly_is_nonblocking_any_scope(self):
        for scope in (Scope.PER_FLOW, Scope.CROSS_FLOW):
            spec = self._spec(scope, AccessPattern.WRITE_MOSTLY)
            assert spec.strategy() is CacheStrategy.NON_BLOCKING

    def test_per_flow_any_other_pattern_is_cached(self):
        for access in (AccessPattern.READ_HEAVY, AccessPattern.READ_WRITE_OFTEN):
            spec = self._spec(Scope.PER_FLOW, access)
            assert spec.strategy() is CacheStrategy.PER_FLOW_CACHE

    def test_cross_flow_read_heavy_uses_callbacks(self):
        spec = self._spec(Scope.CROSS_FLOW, AccessPattern.READ_HEAVY)
        assert spec.strategy() is CacheStrategy.READ_HEAVY_CACHE

    def test_cross_flow_read_write_often_is_split_aware(self):
        spec = self._spec(Scope.CROSS_FLOW, AccessPattern.READ_WRITE_OFTEN)
        assert spec.strategy() is CacheStrategy.SPLIT_AWARE

    def test_granularity(self):
        fine = self._spec(
            Scope.PER_FLOW,
            AccessPattern.READ_HEAVY,
            ("src_ip", "dst_ip", "src_port", "dst_port", "proto"),
        )
        coarse = self._spec(Scope.CROSS_FLOW, AccessPattern.READ_HEAVY, ("src_ip",))
        assert fine.granularity() > coarse.granularity()
