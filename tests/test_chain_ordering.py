"""Integration test for chain-wide ordering (R4, §5.2, Figure 2).

The Figure 2 chain: firewall -> three scrubbers (per-protocol) -> off-path
trojan detector. One scrubber instance is slowed (resource contention),
which reorders one protocol's traffic relative to the others by the time
the copy reaches the detector. With logical clocks the detector still
finds every injected signature and flags no decoys; reasoning from local
arrival order it misses some.
"""

import random


from repro.bench.scenarios import build_trojan_chain
from repro.simnet.engine import Simulator
from repro.traffic.trace import make_trace2
from repro.traffic.trojan import inject_trojan_signatures
from repro.traffic.workload import ReplaySource


def run_figure2(use_clocks, delayed_ports, n_signatures=5, seed=3):
    sim = Simulator()
    runtime = build_trojan_chain(sim, use_clocks=use_clocks)
    base = make_trace2(scale=0.0015, seed=seed)
    scenario = inject_trojan_signatures(
        base, n_signatures=n_signatures, n_decoys=4, seed=seed, separation=25
    )
    # Slow the scrubber instance(s) handling the delayed protocols: 50-100µs
    # random extra per-packet delay (the paper's W1-W3 workloads).
    rng = random.Random(seed)
    splitter = runtime.splitter("scrubber")
    from repro.traffic.packet import FiveTuple, Packet

    for port in delayed_ports:
        probe = Packet(FiveTuple("172.16.0.1", "52.99.0.1", 30000, port))
        instance_id = splitter.route(probe)[0]
        runtime.instances[instance_id].extra_delay = lambda: 50.0 + rng.random() * 50.0

    ReplaySource(sim, scenario.trace.packets, runtime.inject, load_fraction=0.5)
    sim.run(until=300_000_000)
    detector = runtime.instances_of("trojan")[0].nf
    return scenario, detector


class TestChainWideOrdering:
    def test_clocks_find_all_signatures_under_upstream_delay(self):
        scenario, detector = run_figure2(use_clocks=True, delayed_ports=[21])
        assert set(scenario.infected_hosts) <= set(detector.detections)

    def test_clocks_flag_no_decoys(self):
        scenario, detector = run_figure2(use_clocks=True, delayed_ports=[21, 22])
        assert not (set(scenario.decoy_hosts) & set(detector.detections))

    def test_arrival_order_misses_signatures_when_ftp_delayed(self):
        # Delaying the FTP scrubber pushes FTP activity past IRC in arrival
        # order at the detector -> missed detections without clocks.
        scenario, detector = run_figure2(use_clocks=False, delayed_ports=[21])
        missed = set(scenario.infected_hosts) - set(detector.detections)
        assert missed, "expected the no-clock detector to miss reordered signatures"

    def test_without_delays_both_modes_agree(self):
        scenario_clock, detector_clock = run_figure2(use_clocks=True, delayed_ports=[])
        scenario_arr, detector_arr = run_figure2(use_clocks=False, delayed_ports=[])
        assert set(scenario_clock.infected_hosts) <= set(detector_clock.detections)
        assert set(scenario_arr.infected_hosts) <= set(detector_arr.detections)
