"""Store-node replacement under traffic (StoreCluster.replace_instance).

The planned replacement protocol (DESIGN.md §12): snapshot + routing swap
in one sim instant, the old node goes lame-duck (commits but never ACKs),
and the catch-up gate holds teardown until every post-snapshot identity
the muted node committed has reappeared on the replacement via client
retransmission. Covers the routing-layer unit behavior, the protocol
under live traffic, and the old node crashing mid-replacement.
"""

import pytest

from repro.chaos.director import ChaosDirector
from repro.chaos.invariants import (
    check_egress_complete,
    check_exactly_once,
    check_flow_ordering,
    check_loss_free_state,
    snapshot_run,
)
from repro.ops import MaintenanceDirector
from repro.ops.campaign import (
    HORIZON_US,
    OP_AT_US,
    SCENARIOS,
    _reference_run,
    build_runtime,
    inject_workload,
    run_scenario,
)
from repro.simnet.engine import Simulator
from repro.simnet.monitor import RecoveryTimeline
from repro.simnet.network import Network
from repro.simnet.rpc import RpcEndpoint
from repro.store.datastore import DatastoreInstance
from repro.store.operations import OperationRegistry


# ----------------------------------------------------------------------
# routing-layer units
# ----------------------------------------------------------------------


def _mk_store(sim, network, name):
    return DatastoreInstance(sim, network, name, registry=OperationRegistry())


class TestClusterReplaceInstance:
    def test_swaps_in_place_and_repoints_assignments(self):
        sim = Simulator()
        runtime = build_runtime(sim, 0)
        cluster = runtime.store
        order_before = list(cluster._order)
        slot = order_before.index("store0")
        assigned_before = [
            vertex
            for vertex, store in cluster._vertex_assignment.items()
            if store == "store0"
        ]
        replacement = _mk_store(sim, runtime.network, "store0m1")
        cluster.replace_instance("store0", replacement)

        assert cluster._order[slot] == "store0m1"
        assert len(cluster._order) == len(order_before)
        assert cluster.instance_named("store0m1") is replacement
        with pytest.raises(KeyError):
            cluster.instance_named("store0")
        for vertex in assigned_before:
            assert cluster._vertex_assignment[vertex] == "store0m1"

    def test_unknown_instance_rejected(self):
        sim = Simulator()
        runtime = build_runtime(sim, 0)
        with pytest.raises(KeyError):
            runtime.store.replace_instance(
                "ghost", _mk_store(sim, runtime.network, "x")
            )

    def test_unassign_vertex(self):
        sim = Simulator()
        runtime = build_runtime(sim, 0)
        cluster = runtime.store
        assert "scrub" in cluster._vertex_assignment
        cluster.unassign_vertex("scrub")
        assert "scrub" not in cluster._vertex_assignment
        cluster.unassign_vertex("scrub")  # idempotent


class TestLameDuck:
    def test_muted_endpoint_sends_nothing(self):
        sim = Simulator()
        network = Network(sim)
        a = RpcEndpoint(sim, network, "a")
        b = RpcEndpoint(sim, network, "b")
        a.mute_output = True
        a.send("b", "one-way")
        sim.run(until=100.0)
        assert len(b.requests._items) == 0

    def test_enter_lame_duck_keeps_committing(self):
        sim = Simulator()
        network = Network(sim)
        store = _mk_store(sim, network, "s")
        assert store.lame_duck is False
        store.enter_lame_duck()
        assert store.lame_duck is True
        assert store.alive  # lame-duck is not failure: it still commits


# ----------------------------------------------------------------------
# the protocol under live traffic
# ----------------------------------------------------------------------

_REFERENCES = {}


def _reference(spec, seed):
    key = repr(sorted(spec.runtime_overrides.items()))
    if key not in _REFERENCES:
        _REFERENCES[key] = _reference_run(seed, spec)
    return _REFERENCES[key]


class TestReplaceUnderTraffic:
    def test_zero_loss_and_clean_teardown(self):
        spec = SCENARIOS["store-replace"]
        caught = {}
        outcome = run_scenario(
            spec,
            seed=5,
            reference=_reference(spec, 5),
            collect_runtime=lambda rt: caught.setdefault("rt", rt),
        )
        assert outcome.ok, [v.as_dict() for v in outcome.violations]
        runtime = caught["rt"]
        names = [store.name for store in runtime.stores]
        assert "store0" not in names  # replaced ...
        assert any(name.startswith("store0m") for name in names)  # ... in place
        record = outcome.operations[0]
        assert record["status"] == "completed"
        steps = [step["name"] for step in record["steps"]]
        assert steps[0].startswith("swap:") and "catchup" in steps

    def test_pending_flushes_reconciled_via_retransmission(self):
        # the catch-up note is the observable for the reconciliation gate:
        # identities the muted node committed post-snapshot must have been
        # watched (not copied) and re-landed on the replacement
        spec = SCENARIOS["store-replace"]
        outcome = run_scenario(spec, seed=6, reference=_reference(spec, 6))
        assert outcome.ok, [v.as_dict() for v in outcome.violations]
        catchup = next(
            step
            for step in outcome.operations[0]["steps"]
            if step["name"] == "catchup"
        )
        assert "reconciled via retransmission" in catchup["note"]


class TestStoreCrashMidReplacement:
    def test_old_node_crash_during_catchup_loses_nothing(self):
        spec = SCENARIOS["store-replace"]
        reference = _reference(spec, 2)
        sim = Simulator()
        runtime = build_runtime(sim, 2)
        timeline = RecoveryTimeline()
        chaos = ChaosDirector(
            sim, network=runtime.network, seed=2, timeline=timeline
        )
        runtime.attach_supervisor(chaos, timeline=timeline)
        director = MaintenanceDirector(runtime, monitor_window_us=50.0)
        old = runtime.store.instance_named("store0")

        def plan():
            yield sim.timeout(OP_AT_US)
            yield from director.replace_store("store0")

        sim.process(plan(), name="replace-store0")
        # the old node dies while the catch-up gate is still watching it:
        # everything it committed-but-never-ACK'd must be retransmitted to
        # the replacement, so the crash costs nothing
        sim.schedule(OP_AT_US + 15.0, old.fail)
        inject_workload(sim, runtime)
        sim.run(until=HORIZON_US)

        assert not old.alive
        record = director.records[0]
        assert record.status == "completed"
        catchup = next(s for s in record.steps if s.name == "catchup")
        assert "crashed mid-catch-up" in catchup.note

        snapshot = snapshot_run(runtime)
        violations = (
            check_exactly_once(snapshot.egress)
            + check_flow_ordering(snapshot.egress)
            + check_loss_free_state(snapshot.state, reference.state)
            + check_egress_complete(snapshot.egress, reference.egress)
        )
        assert violations == [], [v.as_dict() for v in violations]

    def test_supervisor_ignores_retired_store(self):
        # the supervisor must not resurrect the node the director already
        # replaced: its retired-guard records the death and does nothing
        spec = SCENARIOS["store-replace"]
        sim = Simulator()
        runtime = build_runtime(sim, 3)
        timeline = RecoveryTimeline()
        chaos = ChaosDirector(
            sim, network=runtime.network, seed=3, timeline=timeline
        )
        supervisor = runtime.attach_supervisor(chaos, timeline=timeline)
        director = MaintenanceDirector(runtime, monitor_window_us=50.0)
        old = runtime.store.instance_named("store0")

        def plan():
            yield sim.timeout(OP_AT_US)
            yield from director.replace_store("store0")

        sim.process(plan(), name="replace-store0")
        # notify through the chaos injector (the supervisor's input) after
        # the swap has already retired the old node from runtime.stores
        sim.schedule(OP_AT_US + 20.0, chaos.fail_now, old)
        inject_workload(sim, runtime)
        sim.run(until=HORIZON_US)

        assert director.records[0].status == "completed"
        names = [store.name for store in runtime.stores]
        assert "store0" not in names
        retired = [
            event
            for event in timeline.as_dicts()
            if event["kind"] == "retired" and event["component"] == "store0"
        ]
        assert retired, timeline.as_dicts()
