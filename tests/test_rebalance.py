"""Scope-aware partitioning walk (§4.1) with loss-free refinement."""


from repro.core.chain_runtime import ChainRuntime
from repro.core.dag import LogicalChain
from repro.core.splitter import FIVE_TUPLE
from repro.nfs import Dpi
from tests.conftest import make_packet
from tests.test_handover import FlowCounterNF, flow_packet


class TestInitialPartitioning:
    def test_starts_at_coarsest_scope(self, sim):
        chain = LogicalChain("dpi")
        chain.add_vertex("dpi", Dpi, parallelism=2, entry=True)
        runtime = ChainRuntime(sim, chain)
        # DPI's scopes are [5-tuple, (src_ip,)]; partitioning starts coarse
        assert runtime.splitter("dpi").partition_fields == ("src_ip",)

    def test_coarse_split_grants_exclusive_caching(self, sim):
        chain = LogicalChain("dpi")
        chain.add_vertex("dpi", Dpi, parallelism=2, entry=True)
        runtime = ChainRuntime(sim, chain)
        for instance in runtime.instances_of("dpi"):
            # per-src-IP split confines the per-host counter to one instance
            assert instance.client._exclusive["conns_per_host"] is True

    def test_same_host_flows_colocated_under_coarse_split(self, sim):
        chain = LogicalChain("dpi")
        chain.add_vertex("dpi", Dpi, parallelism=2, entry=True)
        runtime = ChainRuntime(sim, chain)
        splitter = runtime.splitter("dpi")
        destinations = {
            splitter.route(make_packet(src="10.0.8.1", sport=port))[0]
            for port in range(1000, 1040)
        }
        assert len(destinations) == 1


class TestRefinement:
    def _runtime(self, sim):
        FlowCounterNF.observed = []
        chain = LogicalChain("walk")
        chain.add_vertex("fc", FlowCounterNF, parallelism=2, entry=True)
        runtime = ChainRuntime(sim, chain)
        # declare a coarse->fine walk and start coarse
        splitter = runtime.splitter("fc")
        splitter.scopes = [FIVE_TUPLE, ("src_ip",)]
        splitter.partition_fields = ("src_ip",)
        runtime._apply_exclusivity()
        return runtime

    def test_refine_remaps_and_loses_nothing(self, sim):
        runtime = self._runtime(sim)
        # skew: all flows from one host -> one instance does all the work
        packets_per_flow = 40
        n_flows = 6
        done = {}

        def source():
            for round_ in range(packets_per_flow):
                for flow in range(n_flows):
                    runtime.inject(flow_packet(0, 1000 + flow))  # same src IP!
                    yield sim.timeout(2.0)
                if round_ == 12 and "rebalanced" not in done:
                    done["rebalanced"] = True

                    def rebalance():
                        done["moves"] = yield from runtime.rebalance_vertex("fc")

                    sim.process(rebalance())

        sim.process(source())
        sim.run(until=60_000_000)

        assert runtime.splitter("fc").partition_fields == FIVE_TUPLE
        # loss-freeness across the refinement: every flow's count exact
        store = runtime.stores[0]
        for flow in range(n_flows):
            keys = [k for k in store.keys() if f"|{1000 + flow}|" in k]
            assert keys and store.peek(keys[0]) == packets_per_flow
        # the skewed load now spreads across both instances
        processed = [i.stats.processed for i in runtime.instances_of("fc") if i.alive]
        assert all(p > 0 for p in processed)

    def test_refine_preserves_per_flow_order(self, sim):
        runtime = self._runtime(sim)
        done = {}

        def source():
            for round_ in range(50):
                for flow in range(4):
                    runtime.inject(flow_packet(0, 2000 + flow))
                    yield sim.timeout(2.0)
                if round_ == 15 and "r" not in done:
                    done["r"] = True
                    sim.process(runtime.rebalance_vertex("fc"))

        sim.process(source())
        sim.run(until=60_000_000)
        per_flow = {}
        for flow, clock in FlowCounterNF.observed:
            per_flow.setdefault(flow, []).append(clock)
        for flow, clocks in per_flow.items():
            assert clocks == sorted(clocks)

    def test_refine_at_finest_scope_is_noop(self, sim):
        runtime = self._runtime(sim)
        splitter = runtime.splitter("fc")
        splitter.partition_fields = FIVE_TUPLE

        def body():
            result = yield from runtime.rebalance_vertex("fc")
            return result

        assert sim.run_process(body()) is None

    def test_refinement_withdraws_exclusivity(self, sim):
        chain = LogicalChain("dpi")
        chain.add_vertex("dpi", Dpi, parallelism=2, entry=True)
        runtime = ChainRuntime(sim, chain)

        def body():
            yield from runtime.rebalance_vertex("dpi")

        sim.run_process(body())
        assert runtime.splitter("dpi").partition_fields == FIVE_TUPLE
        for instance in runtime.instances_of("dpi"):
            # per-host counter now shared across instances: no caching
            assert instance.client._exclusive["conns_per_host"] is False
