"""Unit tests for the logical DAG and the scope-aware splitter."""

import pytest

from repro.core.dag import LogicalChain
from repro.core.nf_api import NetworkFunction, Output
from repro.core.splitter import FIVE_TUPLE, Splitter
from repro.store.spec import AccessPattern, Scope, StateObjectSpec
from tests.conftest import make_packet


class _NoopNF(NetworkFunction):
    name = "noop"

    def process(self, packet, state):
        return [Output(packet)]
        yield


class TestLogicalChain:
    def _chain(self):
        chain = LogicalChain("c")
        chain.add_vertex("a", _NoopNF, entry=True)
        chain.add_vertex("b", _NoopNF)
        chain.add_vertex("c", _NoopNF)
        chain.add_edge("a", "b")
        chain.add_edge("b", "c")
        return chain

    def test_sinks(self):
        chain = self._chain()
        assert chain.sinks() == ["c"]

    def test_validate_ok(self):
        self._chain().validate()

    def test_unreachable_vertex_rejected(self):
        chain = self._chain()
        chain.add_vertex("island", _NoopNF)
        with pytest.raises(ValueError, match="unreachable"):
            chain.validate()

    def test_cycle_rejected(self):
        chain = self._chain()
        chain.add_edge("c", "a")
        with pytest.raises(ValueError, match="cycle"):
            chain.validate()

    def test_duplicate_vertex_rejected(self):
        chain = self._chain()
        with pytest.raises(ValueError):
            chain.add_vertex("a", _NoopNF)

    def test_edge_to_unknown_vertex_rejected(self):
        chain = self._chain()
        with pytest.raises(KeyError):
            chain.add_edge("a", "ghost")

    def test_parallelism_validated(self):
        chain = LogicalChain()
        with pytest.raises(ValueError):
            chain.add_vertex("bad", _NoopNF, parallelism=0)

    def test_first_vertex_is_default_entry(self):
        chain = LogicalChain()
        chain.add_vertex("x", _NoopNF)
        assert chain.entry == "x"


class TestSplitterRouting:
    def _splitter(self, n=3):
        return Splitter("v", [f"v-{i}" for i in range(n)])

    def test_deterministic(self):
        splitter = self._splitter()
        packet = make_packet()
        assert splitter.route(packet) == splitter.route(make_packet())

    def test_both_directions_same_instance(self):
        splitter = self._splitter()
        forward = make_packet(src="10.0.0.1", dst="52.0.0.9", sport=1111, dport=80)
        reverse = make_packet(src="52.0.0.9", dst="10.0.0.1", sport=80, dport=1111)
        assert splitter.route(forward) == splitter.route(reverse)

    def test_spreads_load(self):
        splitter = self._splitter(4)
        destinations = set()
        for port in range(200):
            destinations.update(splitter.route(make_packet(sport=1000 + port)))
        assert len(destinations) == 4

    def test_override_wins(self):
        splitter = self._splitter()
        packet = make_packet()
        key = splitter.key_of(packet)
        splitter.overrides[key] = "v-2"
        assert splitter.route(packet) == ["v-2"]

    def test_replay_target_routes_to_target(self):
        splitter = self._splitter()
        packet = make_packet()
        packet.replayed = True
        packet.replay_target = "v-2"
        assert splitter.route(packet) == ["v-2"]

    def test_replay_target_elsewhere_routes_normally(self):
        splitter = self._splitter()
        packet = make_packet()
        packet.replayed = True
        packet.replay_target = "other-vertex-5"
        assert splitter.route(packet)[0].startswith("v-")

    def test_replication_returns_both(self):
        splitter = self._splitter(1)
        splitter.replicate["v-0"] = "v-0c"
        assert splitter.route(make_packet()) == ["v-0", "v-0c"]

    def test_added_instance_gets_no_hash_traffic(self):
        splitter = self._splitter(2)
        splitter.add_instance("v-new")
        destinations = set()
        for port in range(300):
            destinations.update(splitter.route(make_packet(sport=port + 1)))
        assert "v-new" not in destinations

    def test_replace_instance_keeps_slot(self):
        splitter = self._splitter(2)
        packet = make_packet()
        old = splitter.route(packet)[0]
        splitter.replace_instance(old, "v-R")
        assert splitter.route(make_packet()) == ["v-R"]


class TestSplitterScopes:
    def test_refine_walks_finer(self):
        splitter = Splitter(
            "v", ["v-0"], scopes=[FIVE_TUPLE, ("src_ip",)], partition_fields=("src_ip",)
        )
        assert splitter.partition_fields == ("src_ip",)
        assert splitter.refine() is True
        assert splitter.partition_fields == FIVE_TUPLE
        assert splitter.refine() is False

    def test_default_partition_is_coarsest_scope(self):
        splitter = Splitter("v", ["v-0"], scopes=[FIVE_TUPLE, ("src_ip",)])
        assert splitter.partition_fields == ("src_ip",)

    def _spec(self, fields):
        return StateObjectSpec("o", Scope.CROSS_FLOW, AccessPattern.READ_WRITE_OFTEN, fields)

    def test_single_instance_is_always_exclusive(self):
        splitter = Splitter("v", ["v-0"])
        assert splitter.grants_exclusive(self._spec(()))

    def test_partition_subset_of_scope_is_exclusive(self):
        splitter = Splitter("v", ["v-0", "v-1"], partition_fields=("src_ip",))
        assert splitter.grants_exclusive(self._spec(("src_ip",)))
        assert splitter.grants_exclusive(self._spec(("src_ip", "dst_ip")))

    def test_partition_finer_than_scope_not_exclusive(self):
        splitter = Splitter("v", ["v-0", "v-1"], partition_fields=FIVE_TUPLE)
        assert not splitter.grants_exclusive(self._spec(("src_ip",)))

    def test_replication_disables_single_instance_exclusivity(self):
        splitter = Splitter("v", ["v-0"])
        splitter.replicate["v-0"] = "v-0c"
        assert not splitter.grants_exclusive(self._spec(()))


class TestMoves:
    def test_begin_move_emits_marker_and_reroutes(self):
        splitter = Splitter("v", ["v-0", "v-1"])
        packet = make_packet()
        key = splitter.key_of(packet)
        old = splitter.route(make_packet())[0]
        new = "v-1" if old == "v-0" else "v-0"
        markers = splitter.begin_move([key], new)
        assert len(markers) == 1
        marker = markers[0].control
        assert marker.old_instance == old
        assert marker.new_instance == new
        assert key in marker.scope_keys
        # next matching packet routes to the new instance, marked first
        routed = make_packet()
        assert splitter.route(routed) == [new]
        assert routed.mark_first
        assert routed.control is marker
        # and the one after that is not marked
        second = make_packet()
        splitter.route(second)
        assert not second.mark_first

    def test_move_to_current_instance_is_noop(self):
        splitter = Splitter("v", ["v-0", "v-1"])
        key = splitter.key_of(make_packet())
        current = splitter.current_instance_for(key)
        assert splitter.begin_move([key], current) == []

    def test_batch_move_groups_by_old_instance(self):
        splitter = Splitter("v", ["v-0", "v-1", "v-2"])
        keys = [splitter.key_of(make_packet(sport=p)) for p in range(100, 140)]
        expected_moved = {
            k for k in keys if splitter.current_instance_for(k) != "v-0"
        }
        markers = splitter.begin_move(keys, "v-0")
        # one marker per old instance that held any of the keys
        assert 1 <= len(markers) <= 2
        moved = set()
        for control in markers:
            assert control.control.new_instance == "v-0"
            moved |= set(control.control.scope_keys)
        assert moved == expected_moved
        # every moved key now routes to the new instance
        assert all(splitter.current_instance_for(k) == "v-0" for k in keys)
