"""Unit tests for packets, flows, traces, scenarios and replay."""

import pytest

from repro.simnet.engine import Simulator
from repro.traffic.flows import FlowSpec, flow_packets, interleave
from repro.traffic.packet import (
    ACK,
    FIN,
    FiveTuple,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
    RST,
    SYN,
    scope_fields,
)
from repro.traffic.trace import make_trace, make_trace1, make_trace2
from repro.traffic.trojan import SIGNATURE_ORDER, inject_trojan_signatures
from repro.traffic.workload import ReplaySource, load_interval_us


class TestFiveTuple:
    def test_reversed(self):
        ft = FiveTuple("a", "b", 1, 2, PROTO_TCP)
        assert ft.reversed() == FiveTuple("b", "a", 2, 1, PROTO_TCP)

    def test_canonical_direction_independent(self):
        ft = FiveTuple("b-host", "a-host", 99, 11, PROTO_TCP)
        assert ft.canonical() == ft.reversed().canonical()

    def test_scope_projection(self):
        ft = FiveTuple("1.2.3.4", "5.6.7.8", 10, 20, PROTO_UDP)
        assert scope_fields(ft, ("src_ip",)) == ("1.2.3.4",)
        assert scope_fields(ft, ("dst_ip", "dst_port")) == ("5.6.7.8", 20)


class TestPacketFlags:
    def test_syn_vs_syn_ack(self):
        syn = Packet(FiveTuple("a", "b", 1, 2), flags=SYN)
        syn_ack = Packet(FiveTuple("b", "a", 2, 1), flags=SYN | ACK)
        assert syn.is_syn and not syn.is_syn_ack
        assert syn_ack.is_syn_ack and not syn_ack.is_syn

    def test_fin_rst(self):
        assert Packet(FiveTuple("a", "b", 1, 2), flags=FIN | ACK).is_fin
        assert Packet(FiveTuple("a", "b", 1, 2), flags=RST | ACK).is_rst

    def test_copy_keeps_identity(self):
        packet = Packet(FiveTuple("a", "b", 1, 2))
        packet.clock = 77
        clone = packet.copy()
        assert clone.pkt_id == packet.pkt_id
        assert clone.clock == 77
        assert clone is not packet

    def test_size_bits(self):
        assert Packet(FiveTuple("a", "b", 1, 2), size_bytes=100).size_bits == 800


class TestFlowGeneration:
    def _spec(self, **kwargs):
        defaults = dict(
            five_tuple=FiveTuple("10.0.0.1", "52.0.0.1", 1234, 80),
            n_packets=12,
        )
        defaults.update(kwargs)
        return FlowSpec(**defaults)

    def test_tcp_flow_structure(self):
        packets = [p for _t, p in flow_packets(self._spec())]
        assert packets[0].is_syn
        assert packets[1].is_syn_ack
        assert packets[-1].is_fin

    def test_reset_flow_ends_with_rst(self):
        packets = [p for _t, p in flow_packets(self._spec(reset=True))]
        assert packets[-1].is_rst

    def test_refused_flow_is_syn_then_rst(self):
        packets = [p for _t, p in flow_packets(self._spec(refused=True))]
        assert len(packets) == 2
        assert packets[0].is_syn
        assert packets[1].is_rst
        assert packets[1].five_tuple == packets[0].five_tuple.reversed()

    def test_udp_flow_all_data(self):
        spec = self._spec(
            five_tuple=FiveTuple("10.0.0.1", "52.0.0.1", 53, 53, PROTO_UDP), n_packets=5
        )
        packets = [p for _t, p in flow_packets(spec)]
        assert len(packets) == 5
        assert all(not p.is_syn for p in packets)

    def test_packet_count_matches_spec(self):
        packets = flow_packets(self._spec(n_packets=20))
        assert len(packets) == 20

    def test_arrival_times_monotone(self):
        times = [t for t, _p in flow_packets(self._spec(n_packets=30, gap_us=1.5))]
        assert times == sorted(times)

    def test_interleave_sorts_by_time(self):
        flow_a = flow_packets(self._spec(n_packets=6, start_us=0.0))
        flow_b = flow_packets(
            self._spec(
                five_tuple=FiveTuple("10.0.0.2", "52.0.0.1", 999, 80),
                n_packets=6,
                start_us=0.5,
            )
        )
        merged = interleave([flow_a, flow_b])
        times = [t for t, _p in merged]
        assert times == sorted(times)
        assert len(merged) == 12


class TestTraces:
    def test_trace2_statistics(self):
        stats = make_trace2(scale=0.002).stats()
        assert stats.median_packet_size == 1434
        assert stats.n_connections > 100
        assert stats.n_packets > 5_000

    def test_trace1_statistics(self):
        stats = make_trace1(scale=0.003).stats()
        assert stats.median_packet_size == 368
        # Trace1's signature: few, long connections.
        assert stats.n_packets / stats.n_connections > 100

    def test_deterministic_for_seed(self):
        first = make_trace2(scale=0.0005)
        second = make_trace2(scale=0.0005)
        assert [p.five_tuple for p in first] == [p.five_tuple for p in second]
        assert [p.size_bytes for p in first] == [p.size_bytes for p in second]

    def test_different_seeds_differ(self):
        a = make_trace(2000, 50, [(1434, 1.0)], seed=1)
        b = make_trace(2000, 50, [(1434, 1.0)], seed=2)
        assert [p.five_tuple for p in a] != [p.five_tuple for p in b]

    def test_slice(self):
        trace = make_trace2(scale=0.0005)
        part = trace.slice(10, 20)
        assert len(part) == 10
        assert part.packets[0] is trace.packets[10]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_trace(0, 10, [(100, 1.0)])


class TestTrojanScenario:
    def test_injection_counts(self):
        base = make_trace2(scale=0.002)
        scenario = inject_trojan_signatures(base, n_signatures=5, n_decoys=3)
        assert len(scenario.infected_hosts) == 5
        assert len(scenario.decoy_hosts) == 3
        assert len(scenario.trace) > len(base)

    def test_signature_flows_in_order(self):
        base = make_trace2(scale=0.002)
        scenario = inject_trojan_signatures(base, n_signatures=3, n_decoys=0)
        for host in scenario.infected_hosts:
            firsts = {}
            for index, packet in enumerate(scenario.trace.packets):
                if packet.five_tuple.src_ip == host:
                    port = packet.five_tuple.dst_port
                    firsts.setdefault(port, index)
            positions = [firsts[port] for port in SIGNATURE_ORDER]
            assert positions == sorted(positions)

    def test_decoys_not_in_signature_order(self):
        base = make_trace2(scale=0.002)
        scenario = inject_trojan_signatures(base, n_signatures=1, n_decoys=3)
        for host in scenario.decoy_hosts:
            firsts = {}
            for index, packet in enumerate(scenario.trace.packets):
                if packet.five_tuple.src_ip == host:
                    firsts.setdefault(packet.five_tuple.dst_port, index)
            positions = [firsts[port] for port in SIGNATURE_ORDER]
            assert positions != sorted(positions)

    def test_too_short_trace_rejected(self):
        base = make_trace2(scale=0.0005).slice(0, 100)
        with pytest.raises(ValueError):
            inject_trojan_signatures(base, n_signatures=11)


class TestReplaySource:
    def test_load_interval(self):
        # 1434B at 50% of 10G: 11472 bits / 5000 bits-per-µs
        assert load_interval_us(11472, 0.5) == pytest.approx(2.2944)

    def test_zero_load_rejected(self):
        with pytest.raises(ValueError):
            load_interval_us(1000, 0)

    def test_replay_paces_packets(self, sim):
        trace = make_trace2(scale=0.0005)
        arrivals = []
        source = ReplaySource(
            sim,
            trace.packets[:100],
            lambda p: arrivals.append(sim.now),
            load_fraction=0.5,
        )
        sim.run()
        assert source.injected == 100
        assert len(arrivals) == 100
        assert arrivals == sorted(arrivals)
        assert source.done.triggered

    def test_higher_load_finishes_faster(self):
        def span(load):
            sim = Simulator()
            trace = make_trace2(scale=0.0005)
            ReplaySource(sim, trace.packets[:200], lambda p: None, load_fraction=load)
            return sim.run()

        assert span(1.0) < span(0.3)
