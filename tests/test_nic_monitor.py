"""Unit tests for the NIC model and the measurement helpers."""

import pytest

from repro.simnet.monitor import LatencyRecorder, ThroughputMeter, percentile, percentiles
from repro.simnet.nic import Nic


class TestNic:
    def test_serialisation_delay(self, sim):
        received = []
        nic = Nic(sim, rate_gbps=10.0, deliver=lambda p: received.append((sim.now, p)))
        nic.send("pkt", size_bits=10_000)  # 10000 bits at 10Gbps = 1µs
        sim.run()
        assert received == [(pytest.approx(1.0), "pkt")]

    def test_back_to_back_packets_serialise(self, sim):
        received = []
        nic = Nic(sim, rate_gbps=1.0, deliver=lambda p: received.append(sim.now))
        for _ in range(3):
            nic.send("p", size_bits=1_000)  # 1µs each at 1Gbps
        sim.run()
        assert received == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]

    def test_overhead_bits_reduce_goodput(self, sim):
        received = []
        nic = Nic(
            sim,
            rate_gbps=10.0,
            deliver=lambda p: received.append(sim.now),
            per_packet_overhead_bits=10_000,
        )
        nic.send("p", size_bits=10_000)
        sim.run()
        assert received == [pytest.approx(2.0)]
        assert nic.tx_bits == 10_000  # goodput counts payload only

    def test_queue_limit_tail_drop(self, sim):
        nic = Nic(sim, rate_gbps=0.001, deliver=lambda p: None, queue_limit=2)
        results = [nic.send("p", 1000) for _ in range(5)]
        assert results.count(False) >= 2
        assert nic.drops >= 2

    def test_failed_nic_stops_delivering(self, sim):
        received = []
        nic = Nic(sim, rate_gbps=10.0, deliver=received.append)
        nic.send("p", 1000)
        nic.fail()
        sim.run()
        assert received == []


class TestPercentiles:
    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_percentiles_dict(self):
        result = percentiles(range(101), (5, 50, 95))
        assert result[5.0] == pytest.approx(5)
        assert result[50.0] == pytest.approx(50)
        assert result[95.0] == pytest.approx(95)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestLatencyRecorder:
    def test_summary(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(float(value))
        summary = recorder.summary()
        assert summary[50.0] == pytest.approx(50.5)
        assert len(recorder) == 100
        assert recorder.mean() == pytest.approx(50.5)

    def test_cdf_monotone(self):
        recorder = LatencyRecorder()
        for value in [5, 1, 9, 3, 7]:
            recorder.record(value)
        cdf = recorder.cdf()
        xs = [x for x, _ in cdf]
        ys = [y for _, y in cdf]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_windowed_mean(self):
        recorder = LatencyRecorder()
        recorder.record(10.0, timestamp=0.0)
        recorder.record(20.0, timestamp=100.0)
        recorder.record(30.0, timestamp=600.0)
        windows = recorder.windowed_mean(500.0)
        assert windows[0] == (0.0, pytest.approx(15.0))
        assert windows[1] == (500.0, pytest.approx(30.0))

    def test_windowed_mean_skips_gap_windows(self):
        recorder = LatencyRecorder()
        recorder.record(1.0, timestamp=0.0)
        recorder.record(2.0, timestamp=2600.0)
        windows = recorder.windowed_mean(500.0)
        assert len(windows) == 2


class TestThroughputMeter:
    def test_gbps_over_span(self):
        meter = ThroughputMeter()
        meter.add(10_000, now=0.0)
        meter.add(10_000, now=2.0)  # 20k bits over 2µs = 10 Gbps
        assert meter.gbps() == pytest.approx(10.0)
        assert meter.packets == 2

    def test_explicit_duration(self):
        meter = ThroughputMeter()
        meter.add(5_000, now=1.0)
        assert meter.gbps(duration_us=1.0) == pytest.approx(5.0)

    def test_zero_duration_is_zero(self):
        meter = ThroughputMeter()
        meter.add(100, now=5.0)
        assert meter.gbps() == 0.0
