"""CHC004 fixture: id(obj) persisted as a dict key."""

counts = {}


def tally(marker):
    counts[id(marker)] = counts.get(id(marker), 0) + 1


def seen(marker):
    return id(marker) in counts
