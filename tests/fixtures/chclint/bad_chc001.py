"""CHC001 fixture: module-level / unseeded randomness."""

import random

jitter = random.random()


def pick(items):
    return random.choice(items)
