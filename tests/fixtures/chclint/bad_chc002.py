"""CHC002 fixture: wall-clock read in simulation code."""

import time


def stamp():
    return time.time()
