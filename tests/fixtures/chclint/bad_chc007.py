"""Rewrites splitter membership / retires instances by hand (CHC007)."""


def hostile_cutover(runtime, splitter, old_id, new_id):
    splitter.hash_members.append(new_id)
    splitter.hash_members[0] = new_id
    splitter.hash_members = [new_id]
    del splitter.hash_members[0]
    runtime.retire_instance(old_id)
