"""Clean fixture: the sanctioned idioms for everything chclint checks."""

import random


class Pump:
    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.pending: set = set()
        self.counts = {}

    def drain(self, channel):
        for item in sorted(self.pending):
            channel.put(item)

    def tally(self, marker):
        self.counts[marker.marker_id] = self.counts.get(marker.marker_id, 0) + 1
