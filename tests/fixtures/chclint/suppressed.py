"""Fixture: every violation carries an inline suppression comment."""

import time


def stamp():
    return time.time()  # chclint: disable=CHC002


def pump(channel, pending: set):
    for item in pending:  # chclint: disable=all
        channel.put(item)
