"""CHC005 fixture: NF state writes bypassing the store API."""

TOTAL = 0


class Counter:
    def __init__(self):
        self.count = 0

    def process(self, packet):
        global TOTAL
        TOTAL += 1
        self.count += 1
        return packet
