"""Declarative NF fast paths breaking the match-action contract (CHC006)."""


class UndeclaredTableNF:
    def fast_match(self, packet):
        return packet.dport == 80

    def fast_action(self, packet, state):
        state.update("declared", None, "incr", 1)
        state.update("undeclared", None, "incr", 1)  # not in tables
        return []

    def match_action_form(self):
        return MatchActionForm(
            tables=("declared",),
            match=self.fast_match,
            action=self.fast_action,
        )


class DynamicTableNF:
    def fast_match(self, packet):
        return True

    def fast_action(self, packet, state):
        table = "conn_" + packet.proto
        return [state.get(table, None)]  # non-literal table name

    def match_action_form(self):
        return MatchActionForm(
            tables=("conn_tcp", "conn_udp"),
            match=self.fast_match,
            action=self.fast_action,
        )


class StatefulMatchNF:
    def fast_match(self, packet, state):
        return state.get("hits", None) > 0  # match must be a pure predicate

    def fast_action(self, packet, state):
        return [packet]

    def match_action_form(self):
        return MatchActionForm(
            tables=("hits",),
            match=self.fast_match,
            action=self.fast_action,
        )
