"""CHC003 fixture: unsorted set iteration feeding emission."""


def pump(channel, pending: set):
    for item in pending:
        channel.put(item)
