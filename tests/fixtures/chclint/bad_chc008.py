"""Opens raw sockets / uses bare pickle outside repro.dist.transport (CHC008)."""

import pickle
import socket
from pickle import loads
from socket import AF_INET, create_connection


def hostile_wire(host, port, payload):
    conn = socket.create_connection((host, port))
    conn.sendall(pickle.dumps(payload))
    return loads(conn.recv(4096))
