"""Unit tests for the client-side library (Table 1 strategies, §4.3)."""


from repro.simnet.network import Link


def drive(sim, generator):
    return sim.run_process(generator)


FLOW = ("10.0.0.1", "52.0.0.1", 1234, 80, 6)


class TestNonBlockingStrategy:
    def test_update_waits_for_ack_when_configured(self, sim, client):
        def body():
            start = sim.now
            yield from client.update("counter", None, "incr", 1)
            return sim.now - start

        elapsed = drive(sim, body())
        assert elapsed >= 28.0  # one RTT: the ACK was awaited
        assert client.stats.nonblocking_ops == 1

    def test_update_returns_immediately_without_ack_wait(self, sim, client_factory, store):
        client = client_factory("nf-na", wait_for_acks=False)

        def body():
            start = sim.now
            yield from client.update("counter", None, "incr", 1)
            return sim.now - start

        elapsed = drive(sim, body())
        assert elapsed == 0.0
        sim.run()
        assert store.peek(client._key("counter", None)[1]) == 1

    def test_need_result_forces_blocking(self, sim, client, store):
        def body():
            value = yield from client.update("counter", None, "incr", 5, need_result=True)
            return value

        assert drive(sim, body()) == 5
        assert client.stats.blocking_ops == 1


class TestPerFlowCache:
    def test_cached_update_is_local_and_flushed(self, sim, client, store):
        def body():
            # first touch: cold cache -> blocking op seeds it from the store
            first = yield from client.update("flow_state", FLOW, "incr", 1)
            start = sim.now
            second = yield from client.update("flow_state", FLOW, "incr", 1)
            return (first, second, sim.now - start)

        first, second, elapsed = drive(sim, body())
        assert (first, second) == (1, 2)
        assert elapsed == 0.0  # warm cache: local apply; flush asynchronous
        sim.run()
        storage_key = client._key("flow_state", FLOW)[1]
        assert store.peek(storage_key) == 2
        assert store.owner_of(storage_key) == "nf-0"  # claimed on first write

    def test_cold_update_seeds_cache_from_store(self, sim, client, client_factory, store):
        # live state exists in the store (e.g. before a failover) ...
        def seed():
            yield from client.update("flow_state", FLOW, "incr", 5)
            yield client.ack_barrier()

        drive(sim, seed())
        store._owners.clear()
        # ... a fresh instance's first *update* must not restart from the
        # initial value: it executes at the store and seeds its cache
        other = client_factory("nf-cold")

        def cold():
            value = yield from other.update("flow_state", FLOW, "incr", 1)
            cached = yield from other.read("flow_state", FLOW)
            return value, cached

        value, cached = drive(sim, cold())
        assert value == 6
        assert cached == 6
        assert other.stats.cached_reads == 1

    def test_cached_read_hits_locally(self, sim, client):
        def body():
            yield from client.update("flow_state", FLOW, "incr", 1)
            value = yield from client.read("flow_state", FLOW)
            return value

        assert drive(sim, body()) == 1
        assert client.stats.cached_reads == 1
        assert client.stats.store_reads == 0

    def test_cache_miss_fetches_from_store(self, sim, client, client_factory, store):
        def writer():
            yield from client.update("flow_state", FLOW, "incr", 7)
            yield client.ack_barrier()

        drive(sim, writer())
        # a different instance (e.g. after takeover) must fetch from store
        other = client_factory("nf-1")
        store._owners.clear()  # simulate released ownership

        def reader():
            value = yield from other.read("flow_state", FLOW)
            return value

        assert drive(sim, reader()) == 7
        assert other.stats.store_reads == 1

    def test_ack_barrier_fences_flushes(self, sim, client, store):
        def body():
            for _ in range(10):
                yield from client.update("flow_state", FLOW, "incr", 1)
            yield client.ack_barrier()
            return store.peek(client._key("flow_state", FLOW)[1])

        assert drive(sim, body()) == 10


class TestReadHeavyCache:
    def test_first_read_registers_watch_then_cached(self, sim, client):
        def body():
            first = yield from client.read("config", None)
            cached = yield from client.read("config", None)
            return (first, cached)

        drive(sim, body())
        assert client.stats.store_reads == 1
        assert client.stats.cached_reads == 1

    def test_update_propagates_to_peer_caches(self, sim, client, client_factory):
        peer = client_factory("nf-1")

        def warm(c):
            def body():
                value = yield from c.read("config", None)
                return value

            return body

        drive(sim, warm(client)())
        drive(sim, warm(peer)())

        def update():
            value = yield from client.update("config", None, "set", {"limit": 9})
            return value

        assert drive(sim, update()) == {"limit": 9}
        sim.run()  # callbacks propagate

        def peer_read():
            value = yield from peer.read("config", None)
            return value

        assert drive(sim, peer_read()) == {"limit": 9}
        assert peer.stats.callbacks_received >= 1
        # the peer answered from its refreshed cache, not the store
        assert peer.stats.store_reads == 1


class TestSplitAware:
    def test_exclusive_updates_are_local(self, sim, client):
        client._exclusive["shared"] = True

        def body():
            yield from client.update("shared", ("10.0.0.1",), "incr", 1)  # cold
            start = sim.now
            yield from client.update("shared", ("10.0.0.1",), "incr", 1)  # warm
            return sim.now - start

        assert drive(sim, body()) == 0.0

    def test_non_exclusive_updates_block(self, sim, client):
        client._exclusive["shared"] = False

        def body():
            start = sim.now
            value = yield from client.update("shared", ("10.0.0.1",), "incr", 1)
            return (value, sim.now - start)

        value, elapsed = drive(sim, body())
        assert value == 1
        assert elapsed >= 28.0

    def test_losing_exclusivity_flushes_and_drops_cache(self, sim, client, store):
        client._exclusive["shared"] = True

        def body():
            yield from client.update("shared", ("10.0.0.1",), "incr", 3)
            yield from client.set_exclusive("shared", False)
            # after the flush, the store is authoritative and consistent
            return store.peek(client._key("shared", ("10.0.0.1",))[1])

        assert drive(sim, body()) == 3
        assert not any(k.startswith("nf\x1fshared") for k in client._cache)


class TestCachingDisabled:
    def test_eo_model_reads_and_writes_through(self, sim, client_factory):
        client = client_factory("nf-eo", caching_enabled=False)

        def body():
            start = sim.now
            yield from client.update("flow_state", FLOW, "incr", 1)
            after_update = sim.now - start
            value = yield from client.read("flow_state", FLOW)
            return (after_update, value)

        elapsed, value = drive(sim, body())
        assert elapsed >= 28.0  # even per-flow state costs an RTT
        assert value == 1
        assert client.stats.cached_reads == 0


class TestWalAndVector:
    def test_cross_flow_updates_are_wal_logged(self, sim, client):
        from tests.conftest import make_packet

        packet = make_packet(clock=42)
        client.begin_packet(packet)

        def body():
            yield from client.update("counter", None, "incr", 1)
            yield from client.update("shared", ("10.0.0.1",), "incr", 1, need_result=True)

        drive(sim, body())
        assert len(client.wal.updates) == 2
        assert all(entry.clock == 42 for entry in client.wal.updates)

    def test_per_flow_updates_not_wal_logged(self, sim, client):
        def body():
            yield from client.update("flow_state", FLOW, "incr", 1)

        drive(sim, body())
        assert client.wal.updates == []

    def test_reads_logged_with_ts(self, sim, client):
        from tests.conftest import make_packet

        client.begin_packet(make_packet(clock=7))

        def body():
            yield from client.update("counter", None, "incr", 1)
            yield client.ack_barrier()
            yield from client.read("counter", None)

        drive(sim, body())
        # NON_BLOCKING objects read through to the store and log the read
        assert len(client.wal.reads) == 1
        assert client.wal.reads[0].ts == {"nf-0": 7}

    def test_packet_vector_accumulates_tags(self, sim, client_factory):
        from tests.conftest import make_packet

        client = client_factory("nf-v")
        client.vector_tags = {"counter": 0x00010002, "shared": 0x00010003}
        packet = make_packet(clock=5)
        client.begin_packet(packet)

        def body():
            yield from client.update("counter", None, "incr", 1)
            yield from client.update("shared", ("10.0.0.1",), "incr", 1, need_result=True)

        drive(sim, body())
        assert packet.bitvector == 0x00010002 ^ 0x00010003

    def test_seq_increments_per_key_per_packet(self, sim, client):
        from tests.conftest import make_packet

        client.begin_packet(make_packet(clock=3))

        def body():
            yield from client.update("counter", None, "incr", 1)
            yield from client.update("counter", None, "incr", 1)

        drive(sim, body())
        seqs = [entry.seq for entry in client.wal.updates]
        assert seqs == [0, 1]
        client.begin_packet(make_packet(clock=4))
        drive(sim, body())
        assert [entry.seq for entry in client.wal.updates[2:]] == [0, 1]


class TestRetransmission:
    def test_unacked_op_retransmitted_on_lossy_link(self, sim, network, client_factory, store):
        network.connect("nf-rt", "store0", Link(latency_us=14.0, loss=0.7))
        client = client_factory(
            "nf-rt", wait_for_acks=False, retransmit_timeout_us=100.0
        )

        from tests.conftest import make_packet

        client.begin_packet(make_packet(clock=11))

        def body():
            yield from client.update("counter", None, "incr", 1)
            # generous window: retransmissions back off exponentially
            # (FLUSH_BACKOFF), so attempts spread out as they accumulate
            yield sim.timeout(60_000)

        drive(sim, body())
        # retransmitted until delivered, applied exactly once (the store
        # dedups on the (key, clock, seq) identity)
        assert store.peek(client._key("counter", None)[1]) == 1
        assert client.stats.retransmissions >= 1


class TestBulkRelease:
    def test_release_keys_bulk_moves_ownership(self, sim, client, client_factory, store):
        def seed():
            yield from client.update("flow_state", FLOW, "incr", 1)
            yield client.ack_barrier()

        drive(sim, seed())
        storage_key = client._key("flow_state", FLOW)[1]

        def release():
            moved = yield from client.release_keys_bulk(
                [storage_key], "nf-1", notify_key="rv"
            )
            return moved

        assert drive(sim, release()) == 1
        assert store.owner_of(storage_key) == "nf-1"
        assert storage_key not in client.owned_items()
        assert storage_key not in client._cache
