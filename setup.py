"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments where the
``wheel`` package (required for PEP 660 editable installs) is unavailable.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
